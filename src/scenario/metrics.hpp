#pragma once

// Metric collection for experiments.
//
// Records the exact series the paper plots —
//   Figure 1: actual transactional utility and average hypothetical
//             long-running utility over time;
//   Figure 2: CPU allocated to each workload and each workload's demand
//             (CPU for maximum utility) over time —
// plus churn, queue and completion statistics for the ablations.

#include <memory>
#include <string>
#include <vector>

#include "cluster/actions.hpp"
#include "core/controller.hpp"
#include "core/world.hpp"
#include "util/stats.hpp"
#include "util/time_series.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"

namespace heteroplace::obs {
class SlaLedger;
}  // namespace heteroplace::obs

namespace heteroplace::scenario {

/// End-of-run aggregates.
struct ExperimentSummary {
  std::string scenario;
  std::string policy;

  long jobs_submitted{0};
  long jobs_completed{0};
  /// Fraction of completed jobs that met their completion goal.
  double goal_met_fraction{0.0};
  /// (completion − submit) / goal over completed jobs.
  util::RunningStats completion_ratio;
  /// Utility at completion over completed jobs.
  util::RunningStats job_utility;

  /// Per-sample actual transactional utility (all apps averaged).
  util::RunningStats tx_utility;
  /// Per-cycle average hypothetical utility of active jobs.
  util::RunningStats lr_utility;
  /// |u_tx − ū_lr| over contended cycles: how well utilities equalize.
  util::RunningStats equalization_gap;

  cluster::ActionCounts actions;
  long cycles{0};
  double sim_end_time_s{0.0};
  long invariant_violations{0};

  // Fault & availability aggregates, filled by the runner when fault
  // injection is enabled (all zero / availability 1 otherwise). Not
  // touched by merge_summaries — the federated runner sums them across
  // domains itself.
  long fault_node_crashes{0};
  long fault_link_faults{0};
  long fault_blackouts{0};
  long jobs_reverted{0};
  double jobs_lost_progress_s{0.0};
  double fault_downtime_s{0.0};
  /// Mean time to repair over completed repairs (0 if none completed).
  double fault_mttr_s{0.0};
  /// Time-averaged availability over the run, in [0, 1].
  double availability{1.0};
};

/// Merge finalized per-domain summaries into one federation-level
/// summary: counts and actions sum, running stats merge, and
/// goal_met_fraction is re-weighted by each domain's completed jobs.
[[nodiscard]] ExperimentSummary merge_summaries(const std::vector<ExperimentSummary>& parts);

/// Instantaneous measured allocation state of one world. Both
/// MetricsRecorder::sample and the federation-level aggregator read
/// through this, so a federation's summed fed_* series equal the sum of
/// the per-domain series bit for bit.
struct AllocationSample {
  std::vector<double> tx_alloc_per_app;  // app-registry order
  double tx_alloc_mhz{0.0};              // sum of the above
  double lr_alloc_mhz{0.0};              // running job speeds
  int jobs_running{0};
  int jobs_pending{0};
  int jobs_suspended{0};
  int active_jobs{0};
};

[[nodiscard]] AllocationSample sample_allocations(const core::World& world);

/// Streams controller cycles and periodic samples into a TimeSeriesSet
/// and accumulates the summary.
class MetricsRecorder {
 public:
  MetricsRecorder(const core::World& world,
                  std::shared_ptr<const utility::JobUtilityModel> job_model,
                  std::shared_ptr<const utility::TxUtilityModel> tx_model)
      : world_(&world), job_model_(std::move(job_model)), tx_model_(std::move(tx_model)) {}

  /// Hook for PlacementController::set_observer.
  void on_cycle(const core::CycleReport& report);

  /// Periodic sampling of measured cluster state (allocations, actual
  /// utilities). Scheduled by the experiment runner.
  void sample(util::Seconds now);

  /// Same, from a precomputed allocation snapshot of this recorder's
  /// world — the federated runner computes each domain's sample once and
  /// shares it between the recorder and the fed_* aggregator.
  void sample(util::Seconds now, const AllocationSample& alloc);

  /// Hook for ActionExecutor::set_completion_callback.
  void on_job_completed(const workload::Job& job);

  /// Feed each tx app's sampled response time into the domain's SLA
  /// ledger (null = off). The recorder samples serially per domain, so
  /// the ledger's threading contract holds.
  void set_sla(obs::SlaLedger* sla) { sla_ = sla; }

  [[nodiscard]] const util::TimeSeriesSet& series() const { return series_; }
  [[nodiscard]] util::TimeSeriesSet& series() { return series_; }
  [[nodiscard]] ExperimentSummary& summary() { return summary_; }
  [[nodiscard]] const ExperimentSummary& summary() const { return summary_; }

 private:
  const core::World* world_;
  std::shared_ptr<const utility::JobUtilityModel> job_model_;
  std::shared_ptr<const utility::TxUtilityModel> tx_model_;
  util::TimeSeriesSet series_;
  ExperimentSummary summary_;
  obs::SlaLedger* sla_{nullptr};
  double last_tx_utility_{0.0};
  bool have_tx_utility_{false};
};

}  // namespace heteroplace::scenario
