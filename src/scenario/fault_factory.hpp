#pragma once

// Shared fault-subsystem construction for the experiment runners.
//
// Both runners must translate a FaultSpec into the same FaultSchedule, and
// both must reject a bad spec with the same fault.* key names, so the
// translation lives here once.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "scenario/scenario.hpp"

namespace heteroplace::scenario {

/// Throw util::ConfigError naming the offending fault.* key on an invalid
/// spec: negative rates or durations, half-configured MTTF/MTTR pairs,
/// unknown event kinds, out-of-range targets, severities outside (0, 1],
/// link/domain faults in a run that cannot express them (link faults need
/// migration; link and domain faults need a federation), or overlapping
/// explicit windows on the same target. `nodes_per_domain` describes the
/// topology the events are checked against; `federated` and
/// `migration_enabled` describe the run. The config loader and both
/// runners call this.
void validate_fault_spec(const FaultSpec& spec, const std::vector<std::size_t>& nodes_per_domain,
                         bool federated, bool migration_enabled, double horizon_s);

/// Build the schedule a (validated) spec describes: explicit events plus
/// the stochastic processes, seeded by spec.seed (or `scenario_seed` when
/// spec.seed is 0) on streams independent of every workload stream.
[[nodiscard]] faults::FaultSchedule build_fault_schedule(
    const FaultSpec& spec, std::uint64_t scenario_seed, double horizon_s,
    const std::vector<std::size_t>& nodes_per_domain);

}  // namespace heteroplace::scenario
