#pragma once

// Machine-class plumbing shared by the scenario loaders and runners.
//
// The single-world and federated config loaders both accept the same
// `classes` / `class.<name>.*` pool keys and `*.constraint.*` job/app
// keys; validation and cluster population live here so the two loaders
// cannot drift (the same pattern as fault_factory / power_factory /
// obs_factory).

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/machine_class.hpp"
#include "scenario/scenario.hpp"

namespace heteroplace::scenario {

/// Parse a comma-separated tag list ("gpu,nvme") into sorted unique
/// tags; throws util::ConfigError naming `key` on an empty tag (a
/// stray comma) or a tag with whitespace.
[[nodiscard]] std::vector<std::string> parse_tag_list(const std::string& csv,
                                                      const std::string& key);

/// Fail-loud structural validation of a spec's class pools: duplicate
/// or empty names, nonpositive counts, missing cores/core_mhz/mem_mb,
/// speed_factor outside (0, 1]. No-op for a scalar spec. Errors name
/// the offending `class.<name>.<field>` config key.
void validate_class_pools(const ClusterSpec& cluster);

/// True when at least one of the spec's pools admits `c`. A scalar
/// spec holds only the implicit default class, which any non-empty
/// constraint fails closed against.
[[nodiscard]] bool cluster_admits(const ClusterSpec& cluster, const cluster::ConstraintSet& c);

/// Throw util::ConfigError naming `what` unless some pool among
/// `clusters` admits `c` — an unsatisfiable constraint is a config
/// error at load time, not a job that waits forever at run time.
void validate_constraint(const cluster::ConstraintSet& c,
                         const std::vector<const ClusterSpec*>& clusters,
                         const std::string& what);

/// Register the spec's classes on `cl` and add its nodes: pools in
/// declaration order (node ids group by class; a zero-count pool still
/// registers its class so ClassIds align across domains), or the exact
/// legacy homogeneous path for a scalar spec.
void populate_cluster(cluster::Cluster& cl, const ClusterSpec& spec);

}  // namespace heteroplace::scenario
