#pragma once

// Experiment runner: wires a Scenario into engine + world + controller +
// metrics, runs the simulation, and returns series + summary.

#include <functional>
#include <memory>
#include <string>

#include "obs/profile.hpp"
#include "scenario/metrics.hpp"
#include "scenario/scenario.hpp"

namespace heteroplace::scenario {

enum class PolicyKind {
  kUtilityDriven,      // the paper's controller
  kStaticPartition,    // fixed node split, FCFS jobs
  kProportionalEqual,  // CPU fair share, utility-blind
  kProportionalDemand  // CPU proportional to demand, utility-blind
};

[[nodiscard]] const char* to_string(PolicyKind p);
[[nodiscard]] PolicyKind policy_from_string(const std::string& name);

struct ExperimentOptions {
  PolicyKind policy{PolicyKind::kUtilityDriven};
  /// TX node fraction for the static-partition baseline.
  double static_tx_fraction{0.4};
  /// Run cluster invariant validation after every control cycle and
  /// count violations in the summary (tests assert zero).
  bool validate_invariants{false};
  /// Override the scenario horizon (0 = keep scenario setting).
  double horizon_override_s{0.0};
  /// Hard safety cap on simulated time when running to completion.
  double max_sim_time_s{5.0e6};
  /// Measurement noise on the controller's arrival-rate observations:
  /// each cycle the utility-driven policy sees λ_true × LogNormal(1, cv)
  /// smoothed by an EWMA estimator (0 = perfect observation). Only
  /// affects the utility-driven policy.
  double lambda_noise_cv{0.0};
  /// Half-life of the rate-estimator EWMA (see perfmodel::RateEstimator).
  double lambda_estimator_half_life_s{1200.0};
};

struct ExperimentResult {
  util::TimeSeriesSet series;
  ExperimentSummary summary;
  /// Wall-clock per-phase profile (scenario.obs.profile; empty otherwise).
  /// Machine-dependent diagnostics — excluded from result_digest, exactly
  /// like EngineStats.
  obs::ProfileReport profile;
};

/// Engine worker threads a runner should actually use for a scenario
/// configured with `configured` (>= 1 after clamping). The environment
/// variable HETEROPLACE_FORCE_THREADS, when set to an integer >= 1,
/// overrides every scenario: CI's ThreadSanitizer job sets it to push
/// the whole suite — whose scenarios default to engine.threads = 1 —
/// through the parallel batch path. Safe by the engine's contract:
/// threads = N is bit-identical to threads = 1, so forcing it cannot
/// change any expected output.
[[nodiscard]] int effective_engine_threads(int configured);

/// Run `scenario` under `options` and collect results. Deterministic for
/// a fixed (scenario.seed, options) pair.
[[nodiscard]] ExperimentResult run_experiment(const Scenario& scenario,
                                              const ExperimentOptions& options = {});

}  // namespace heteroplace::scenario
