#include "scenario/result_digest.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace heteroplace::scenario {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}

void ResultDigest::fold(std::uint64_t bits) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (bits >> (8 * i)) & 0xffu;
    hash_ *= kFnvPrime;
  }
}

void ResultDigest::fold(double v) { fold(std::bit_cast<std::uint64_t>(v)); }

void ResultDigest::fold(long v) { fold(static_cast<std::uint64_t>(v)); }

void ResultDigest::fold(const std::string& s) {
  for (unsigned char c : s) {
    hash_ ^= c;
    hash_ *= kFnvPrime;
  }
  fold(static_cast<std::uint64_t>(s.size()));  // length-delimit
}

void ResultDigest::fold(const util::TimeSeries& series) {
  fold(series.name());
  fold(static_cast<std::uint64_t>(series.size()));
  for (const auto& p : series.points()) {
    fold(p.t);
    fold(p.v);
  }
}

void ResultDigest::fold(const util::TimeSeriesSet& set) {
  std::vector<std::string> names = set.names();
  std::sort(names.begin(), names.end());
  fold(static_cast<std::uint64_t>(names.size()));
  for (const std::string& name : names) fold(*set.find(name));
}

namespace {

void fold_stats(ResultDigest& d, const util::RunningStats& s) {
  d.fold(static_cast<std::uint64_t>(s.count()));
  d.fold(s.mean());
  d.fold(s.min());
  d.fold(s.max());
}

void fold_summary(ResultDigest& d, const ExperimentSummary& s) {
  d.fold(s.jobs_submitted);
  d.fold(s.jobs_completed);
  d.fold(s.goal_met_fraction);
  fold_stats(d, s.completion_ratio);
  fold_stats(d, s.job_utility);
  fold_stats(d, s.tx_utility);
  fold_stats(d, s.lr_utility);
  fold_stats(d, s.equalization_gap);
  d.fold(s.actions.starts);
  d.fold(s.actions.suspends);
  d.fold(s.actions.resumes);
  d.fold(s.actions.migrations);
  d.fold(s.actions.instance_starts);
  d.fold(s.actions.instance_stops);
  d.fold(s.actions.resizes);
  d.fold(s.cycles);
  d.fold(s.sim_end_time_s);
  d.fold(s.invariant_violations);
  d.fold(s.fault_node_crashes);
  d.fold(s.fault_link_faults);
  d.fold(s.fault_blackouts);
  d.fold(s.jobs_reverted);
  d.fold(s.jobs_lost_progress_s);
  d.fold(s.fault_downtime_s);
  d.fold(s.fault_mttr_s);
  d.fold(s.availability);
}

}  // namespace

std::uint64_t digest(const ExperimentResult& result) {
  ResultDigest d;
  d.fold(result.series);
  fold_summary(d, result.summary);
  return d.value();
}

std::uint64_t digest(const FederatedResult& result) {
  ResultDigest d;
  d.fold(static_cast<std::uint64_t>(result.domains.size()));
  for (const DomainResult& dom : result.domains) {
    d.fold(dom.name);
    d.fold(dom.jobs_routed);
    d.fold(dom.result.series);
    fold_summary(d, dom.result.summary);
  }
  d.fold(result.series);
  fold_summary(d, result.summary);
  d.fold(result.migration.started);
  d.fold(result.migration.completed);
  d.fold(result.migration.cancelled);
  d.fold(result.migration.bytes_moved_mb);
  d.fold(result.migration.transfer_seconds);
  d.fold(result.migration.queue_wait_seconds);
  d.fold(result.faults.node_crashes);
  d.fold(result.faults.link_faults);
  d.fold(result.faults.blackouts);
  d.fold(result.fault_mttr_s);
  return d.value();
}

}  // namespace heteroplace::scenario
