#pragma once

// Observability construction and fail-loud validation, mirroring
// fault_factory: validate_obs_spec rejects bad obs.* configuration with a
// util::ConfigError naming the offending key; make_observability turns a
// validated spec into the recorder/registry/profiler bundle the runners
// wire into the subsystems.

#include <memory>
#include <string>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/audit.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sla.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace heteroplace::scenario {

/// Throws util::ConfigError for: unknown obs.trace / obs.audit modes,
/// non-positive or absurd ring capacities, obs.trace=stream without a
/// path, obs.audit_path without obs.audit=ring, or any configured output
/// path that cannot be opened for writing. Both runners call this, so
/// programmatic specs fail as loudly as loaded ones.
void validate_obs_spec(const ObsSpec& spec);

/// The bundle a runner owns for one experiment. Members are null when the
/// corresponding feature is off; default-constructed = everything off.
struct Observability {
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Profiler> profiler;
  /// SLO burn-rate alert engine; non-null iff the scenario declared SLOs.
  std::unique_ptr<obs::AlertEngine> alerts;
  /// Per-domain SLA ledgers / audit rings, created lazily by context() in
  /// domain order (pid i+1 -> slot i). Empty when sla/audit are off.
  std::vector<std::unique_ptr<obs::SlaLedger>> ledgers;
  std::vector<std::unique_ptr<obs::AuditLog>> audits;
  bool sla_on{false};
  bool audit_on{false};
  std::size_t audit_capacity{0};

  [[nodiscard]] bool any() const {
    return trace != nullptr || metrics != nullptr || profiler != nullptr || sla_on || audit_on;
  }
  /// Context handed to a subsystem: pid 0 = global/serial spine, i+1 =
  /// domain i; `domain` is the label value for that domain's metrics
  /// (empty = no label). Domain contexts (pid >= 1) also carry that
  /// domain's SLA ledger / audit log, created here on first use.
  [[nodiscard]] obs::ObsContext context(std::uint32_t pid, const std::string& domain = "");
  /// Ledgers / audit logs in domain order (alert evaluation, report
  /// rendering, audit dump).
  [[nodiscard]] std::vector<const obs::SlaLedger*> ledger_list() const;
  [[nodiscard]] std::vector<const obs::AuditLog*> audit_list() const;
};

/// Validates, then constructs exactly the enabled pieces (a spec with
/// any() == false and no SLOs yields an empty bundle). `slos` come from
/// Scenario::slos / FederatedScenario::slos; any entry enables the SLA
/// ledger and the alert engine (bound to the trace/metrics here).
[[nodiscard]] Observability make_observability(const ObsSpec& spec,
                                               const std::vector<obs::SloSpec>& slos = {});

/// End-of-run output: finalize/dump the trace, write metrics snapshots,
/// the SLA report (JSON/CSV) and the audit dump to the paths named in the
/// spec. Safe to call with an empty bundle.
void export_observability(const ObsSpec& spec, Observability& o);

/// Fold sim::EngineTiming into a profile report as engine/* rows
/// (serial spine by priority class, batch execution, merge barrier).
void append_engine_profile(obs::ProfileReport& report, const sim::EngineTiming& timing,
                           std::uint64_t parallel_batches);

}  // namespace heteroplace::scenario
