#pragma once

// Observability construction and fail-loud validation, mirroring
// fault_factory: validate_obs_spec rejects bad obs.* configuration with a
// util::ConfigError naming the offending key; make_observability turns a
// validated spec into the recorder/registry/profiler bundle the runners
// wire into the subsystems.

#include <memory>
#include <string>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace heteroplace::scenario {

/// Throws util::ConfigError for: unknown obs.trace mode, non-positive or
/// absurd obs.trace_ring_capacity, obs.trace=stream without a path, or any
/// configured output path that cannot be opened for writing. Both runners
/// call this, so programmatic specs fail as loudly as loaded ones.
void validate_obs_spec(const ObsSpec& spec);

/// The bundle a runner owns for one experiment. Members are null when the
/// corresponding feature is off; default-constructed = everything off.
struct Observability {
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::Profiler> profiler;

  [[nodiscard]] bool any() const {
    return trace != nullptr || metrics != nullptr || profiler != nullptr;
  }
  /// Context handed to a subsystem: pid 0 = global/serial spine, i+1 =
  /// domain i; `domain` is the label value for that domain's metrics
  /// (empty = no label).
  [[nodiscard]] obs::ObsContext context(std::uint32_t pid, const std::string& domain = "") const;
};

/// Validates, then constructs exactly the enabled pieces (a spec with
/// any() == false yields an empty bundle).
[[nodiscard]] Observability make_observability(const ObsSpec& spec);

/// End-of-run output: finalize/dump the trace and write metrics snapshots
/// to the paths named in the spec. Safe to call with an empty bundle.
void export_observability(const ObsSpec& spec, Observability& o);

/// Fold sim::EngineTiming into a profile report as engine/* rows
/// (serial spine by priority class, batch execution, merge barrier).
void append_engine_profile(obs::ProfileReport& report, const sim::EngineTiming& timing,
                           std::uint64_t parallel_batches);

}  // namespace heteroplace::scenario
