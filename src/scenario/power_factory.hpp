#pragma once

// Shared power-subsystem construction for the experiment runners.
//
// The single-cluster runner builds one PowerManager; the federated runner
// builds one per domain (each domain meters and consolidates its own
// cluster, optionally under its own cap). Both must translate the same
// PowerSpec identically, so the construction lives here once.

#include <memory>

#include "core/world.hpp"
#include "power/manager.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace heteroplace::scenario {

/// Throw util::ConfigError naming the offending power.* key on an
/// invalid spec (unknown policy/park state, nonpositive latencies where
/// positive is required, out-of-range ladder depth, ...). The config
/// loader and both runners call this.
void validate_power_spec(const PowerSpec& spec);

/// Build the node power table a spec describes.
[[nodiscard]] power::PowerModel power_model_from_spec(const PowerSpec& spec);

/// Build a manager for `world` (cluster must already be populated).
/// `cycle_s` supplies the default check interval when the spec leaves it
/// at 0; `cap_w_override` >= 0 replaces the spec's cap (per-domain caps
/// in federated runs), < 0 keeps it. `shard` tags the manager's events
/// for parallel batching (federated runs pass the domain index).
[[nodiscard]] std::unique_ptr<power::PowerManager> make_power_manager(
    sim::Engine& engine, core::World& world, const PowerSpec& spec, double cycle_s,
    double cap_w_override = -1.0, sim::ShardId shard = sim::kNoShard);

}  // namespace heteroplace::scenario
