#pragma once

// Human-readable and CSV reporting of experiment results, shared by the
// benches and examples so every run prints comparable rows.

#include <ostream>
#include <string>

#include "scenario/metrics.hpp"
#include "util/time_series.hpp"

namespace heteroplace::scenario {

/// Multi-line human-readable summary block.
void print_summary(std::ostream& os, const ExperimentSummary& summary);

/// One-line CSV header/row matching print_summary's content (for sweep
/// benches that emit one row per configuration).
[[nodiscard]] std::string summary_csv_header();
[[nodiscard]] std::string summary_csv_row(const ExperimentSummary& summary);

/// Print selected series as a CSV table, optionally thinning to every
/// n-th sample row (benches print every row to files, thinned to stdout).
void print_series_csv(std::ostream& os, const util::TimeSeriesSet& series,
                      const std::vector<std::string>& names, int every_nth = 1);

}  // namespace heteroplace::scenario
