#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>

namespace heteroplace::scenario {

int ClusterSpec::total_nodes() const {
  if (!heterogeneous()) return nodes;
  int total = 0;
  for (const auto& pool : classes) total += pool.count;
  return total;
}

double ClusterSpec::max_node_cpu_mhz() const {
  if (!heterogeneous()) return cpu_per_node_mhz;
  double best = 0.0;
  for (const auto& pool : classes) best = std::max(best, pool.klass.delivered_cpu_mhz());
  return best;
}

Scenario section3_scenario() {
  Scenario s;
  s.name = "section3";

  s.cluster.nodes = 25;
  s.cluster.cpu_per_node_mhz = 12000.0;  // 4 × 3 GHz
  s.cluster.mem_per_node_mb = 4096.0;

  // Long-running jobs: identical, single-processor, sized so that the
  // offered batch load slightly exceeds the capacity left over by the
  // transactional tier — the paper's "increasingly crowded" regime.
  s.jobs.count = 800;
  s.jobs.mean_interarrival_s = 260.0;
  s.jobs.tmpl.name_prefix = "batch";
  s.jobs.tmpl.work = util::MhzSeconds{4.8e7};  // 16,000 s at full speed
  s.jobs.tmpl.work_cv = 0.0;                   // identical jobs
  s.jobs.tmpl.max_speed = util::CpuMhz{3000.0};  // one processor
  s.jobs.tmpl.memory = util::MemMb{1300.0};      // 3 jobs fit per node
  s.jobs.tmpl.goal_stretch = 2.0;                // goal = 2 × nominal length
  s.jobs.utility_shape = "piecewise";

  // One constant transactional workload (the paper holds it constant).
  TxAppScenario web;
  web.spec.id = util::AppId{0};
  web.spec.name = "web";
  web.spec.rt_goal = util::Seconds{1.2};
  web.spec.service_demand = 5000.0;  // MHz·s per request
  web.spec.max_utilization = 0.9;
  web.spec.throughput_exponent = 0.5;
  web.spec.utility_cap = 0.9;
  web.spec.importance = 1.0;
  web.spec.instance_memory = util::MemMb{1024.0};
  web.spec.min_instances = 1;
  web.spec.max_instances = 25;
  web.spec.max_cpu_per_instance = util::CpuMhz{12000.0};
  web.trace = workload::DemandTrace{24.0};  // req/s, constant
  s.apps.push_back(std::move(web));

  s.controller.cycle_s = 600.0;
  s.sample_interval_s = 600.0;
  s.horizon_s = 0.0;  // run until the last job completes
  s.seed = 42;
  return s;
}

Scenario section3_scaled(double scale) {
  Scenario s = section3_scenario();
  scale = std::clamp(scale, 0.01, 1.0);
  if (scale >= 1.0) return s;

  s.name = "section3-scaled";
  s.cluster.nodes = std::max(2, static_cast<int>(std::lround(25 * scale)));
  s.jobs.count = std::max<long>(4, std::lround(800 * scale));
  // Same inter-arrival, proportionally shorter jobs: the offered batch
  // load stays slightly above the scaled cluster's leftover capacity and
  // the run finishes quickly.
  s.jobs.tmpl.work = util::MhzSeconds{4.8e7 * scale};
  // Transactional demand scales with the cluster. The λ·d component
  // scales through λ; the RT-floor component d/(T(1−u_cap)) is scaled by
  // loosening the response-time goal, keeping demand/capacity constant.
  s.apps[0].trace = workload::DemandTrace{24.0 * scale};
  s.apps[0].spec.rt_goal = util::Seconds{1.2 / scale};
  s.apps[0].spec.max_instances = s.cluster.nodes;
  return s;
}

Scenario service_differentiation_scenario() {
  Scenario s = section3_scenario();
  s.name = "service-differentiation";
  s.apps.clear();

  TxAppScenario gold;
  gold.spec.id = util::AppId{0};
  gold.spec.name = "gold";
  gold.spec.rt_goal = util::Seconds{0.8};
  gold.spec.service_demand = 5000.0;
  gold.spec.max_utilization = 0.9;
  gold.spec.throughput_exponent = 0.5;
  gold.spec.utility_cap = 0.9;
  gold.spec.importance = 1.5;  // premium class
  gold.spec.instance_memory = util::MemMb{1024.0};
  gold.spec.min_instances = 1;
  gold.spec.max_instances = 25;
  gold.spec.max_cpu_per_instance = util::CpuMhz{12000.0};
  gold.trace = workload::DemandTrace{14.0};
  s.apps.push_back(std::move(gold));

  TxAppScenario silver;
  silver.spec.id = util::AppId{1};
  silver.spec.name = "silver";
  silver.spec.rt_goal = util::Seconds{2.0};
  silver.spec.service_demand = 5000.0;
  silver.spec.max_utilization = 0.9;
  silver.spec.throughput_exponent = 0.5;
  silver.spec.utility_cap = 0.9;
  silver.spec.importance = 1.0;
  silver.spec.instance_memory = util::MemMb{1024.0};
  silver.spec.min_instances = 1;
  silver.spec.max_instances = 25;
  silver.spec.max_cpu_per_instance = util::CpuMhz{12000.0};
  silver.trace = workload::DemandTrace{12.0};
  s.apps.push_back(std::move(silver));

  // Jobs with two importance classes are produced by the runner when
  // tmpl.importance differs; here keep the default stream.
  return s;
}

}  // namespace heteroplace::scenario
