#include "scenario/obs_factory.hpp"

#include <fstream>

#include "util/config.hpp"

namespace heteroplace::scenario {

namespace {

// Upper bound on the ring: 2^26 events is ~5 GB of TraceEvent — anything
// above is a typo, not a plan.
constexpr long kMaxRingCapacity = 1L << 26;

void check_writable(const char* key, const std::string& path) {
  if (path.empty()) return;
  // Append mode probes writability without truncating an existing file
  // (the real export truncates later, once the run has produced output).
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw util::ConfigError(std::string(key) + ": cannot open '" + path + "' for writing");
  }
}

}  // namespace

void validate_obs_spec(const ObsSpec& spec) {
  if (spec.trace != "off" && spec.trace != "ring" && spec.trace != "stream") {
    throw util::ConfigError("obs.trace: unknown mode '" + spec.trace +
                            "' (expected off|ring|stream)");
  }
  if (spec.trace == "ring") {
    if (spec.trace_ring_capacity <= 0) {
      throw util::ConfigError("obs.trace_ring_capacity: must be positive, got " +
                              std::to_string(spec.trace_ring_capacity));
    }
    if (spec.trace_ring_capacity > kMaxRingCapacity) {
      throw util::ConfigError("obs.trace_ring_capacity: " +
                              std::to_string(spec.trace_ring_capacity) + " exceeds the maximum " +
                              std::to_string(kMaxRingCapacity));
    }
  }
  if (spec.trace == "stream" && spec.trace_path.empty()) {
    throw util::ConfigError("obs.trace: mode 'stream' requires obs.trace_path");
  }
  if (spec.audit != "off" && spec.audit != "ring") {
    throw util::ConfigError("obs.audit: unknown mode '" + spec.audit + "' (expected off|ring)");
  }
  if (spec.audit == "ring") {
    if (spec.audit_ring_capacity <= 0) {
      throw util::ConfigError("obs.audit_ring_capacity: must be positive, got " +
                              std::to_string(spec.audit_ring_capacity));
    }
    if (spec.audit_ring_capacity > kMaxRingCapacity) {
      throw util::ConfigError("obs.audit_ring_capacity: " +
                              std::to_string(spec.audit_ring_capacity) + " exceeds the maximum " +
                              std::to_string(kMaxRingCapacity));
    }
  } else if (!spec.audit_path.empty()) {
    throw util::ConfigError("obs.audit_path has no effect with obs.audit=off");
  }
  if (spec.trace_enabled()) check_writable("obs.trace_path", spec.trace_path);
  check_writable("obs.metrics_path", spec.metrics_path);
  check_writable("obs.metrics_json_path", spec.metrics_json_path);
  check_writable("obs.audit_path", spec.audit_path);
  check_writable("obs.sla_report_path", spec.sla_report_path);
  check_writable("obs.sla_report_csv_path", spec.sla_report_csv_path);
}

obs::ObsContext Observability::context(std::uint32_t pid, const std::string& domain) {
  obs::ObsContext ctx;
  ctx.trace = trace.get();
  ctx.metrics = metrics.get();
  ctx.profiler = profiler.get();
  ctx.pid = pid;
  if (!domain.empty()) ctx.labels = obs::prometheus_label("domain", domain);
  if (pid >= 1 && (sla_on || audit_on)) {
    const std::size_t slot = pid - 1;
    const std::string name = domain.empty() ? "default" : domain;
    if (sla_on) {
      if (ledgers.size() <= slot) ledgers.resize(slot + 1);
      if (!ledgers[slot]) ledgers[slot] = std::make_unique<obs::SlaLedger>(name);
      ctx.sla = ledgers[slot].get();
    }
    if (audit_on) {
      if (audits.size() <= slot) audits.resize(slot + 1);
      if (!audits[slot]) audits[slot] = std::make_unique<obs::AuditLog>(name, audit_capacity);
      ctx.audit = audits[slot].get();
    }
  }
  return ctx;
}

std::vector<const obs::SlaLedger*> Observability::ledger_list() const {
  std::vector<const obs::SlaLedger*> out;
  out.reserve(ledgers.size());
  for (const auto& l : ledgers) {
    if (l) out.push_back(l.get());
  }
  return out;
}

std::vector<const obs::AuditLog*> Observability::audit_list() const {
  std::vector<const obs::AuditLog*> out;
  out.reserve(audits.size());
  for (const auto& a : audits) {
    if (a) out.push_back(a.get());
  }
  return out;
}

Observability make_observability(const ObsSpec& spec, const std::vector<obs::SloSpec>& slos) {
  validate_obs_spec(spec);
  Observability o;
  if (spec.trace_enabled()) {
    obs::TraceRecorder::Options opts;
    opts.mode = obs::trace_mode_from_string(spec.trace);
    opts.ring_capacity = static_cast<std::size_t>(spec.trace_ring_capacity);
    opts.path = spec.trace_path;
    opts.engine_lane = spec.trace_engine;
    o.trace = std::make_unique<obs::TraceRecorder>(opts);
  }
  if (spec.metrics_enabled()) o.metrics = std::make_unique<obs::MetricsRegistry>();
  if (spec.profile) o.profiler = std::make_unique<obs::Profiler>();
  o.sla_on = spec.sla_enabled() || !slos.empty();
  o.audit_on = spec.audit_enabled();
  o.audit_capacity = static_cast<std::size_t>(spec.audit_ring_capacity);
  if (!slos.empty()) {
    o.alerts = std::make_unique<obs::AlertEngine>();
    for (const obs::SloSpec& s : slos) o.alerts->add_slo(s);
    o.alerts->bind(o.trace.get(), o.metrics.get());
  }
  return o;
}

void export_observability(const ObsSpec& spec, Observability& o) {
  if (o.trace) o.trace->finish();
  if (o.metrics) {
    if (!spec.metrics_path.empty()) {
      std::ofstream f(spec.metrics_path, std::ios::trunc);
      f << o.metrics->prometheus_text();
      if (!f) {
        throw util::ConfigError("obs.metrics_path: error writing '" + spec.metrics_path + "'");
      }
    }
    if (!spec.metrics_json_path.empty()) {
      std::ofstream f(spec.metrics_json_path, std::ios::trunc);
      f << o.metrics->json();
      if (!f) {
        throw util::ConfigError("obs.metrics_json_path: error writing '" +
                                spec.metrics_json_path + "'");
      }
    }
  }
  if (!spec.audit_path.empty()) {
    std::ofstream f(spec.audit_path, std::ios::trunc);
    f << obs::render_audit_json(o.audit_list());
    if (!f) {
      throw util::ConfigError("obs.audit_path: error writing '" + spec.audit_path + "'");
    }
  }
  if (!spec.sla_report_path.empty()) {
    std::ofstream f(spec.sla_report_path, std::ios::trunc);
    f << obs::render_sla_report_json(o.ledger_list(), o.alerts.get());
    if (!f) {
      throw util::ConfigError("obs.sla_report_path: error writing '" + spec.sla_report_path +
                              "'");
    }
  }
  if (!spec.sla_report_csv_path.empty()) {
    std::ofstream f(spec.sla_report_csv_path, std::ios::trunc);
    f << obs::render_sla_report_csv(o.ledger_list(), o.alerts.get());
    if (!f) {
      throw util::ConfigError("obs.sla_report_csv_path: error writing '" +
                              spec.sla_report_csv_path + "'");
    }
  }
}

void append_engine_profile(obs::ProfileReport& report, const sim::EngineTiming& timing,
                           std::uint64_t parallel_batches) {
  for (std::size_t c = 0; c < timing.serial_class_events.size(); ++c) {
    if (timing.serial_class_events[c] == 0) continue;
    report.push_back({std::string("engine/serial/") + sim::priority_class_name(static_cast<int>(c)),
                      timing.serial_class_events[c], timing.serial_class_ns[c]});
  }
  if (timing.serial_events > 0) {
    report.push_back({"engine/serial_spine", timing.serial_events, timing.serial_ns});
  }
  if (parallel_batches > 0) {
    report.push_back({"engine/batch_exec", parallel_batches, timing.batch_exec_ns});
    report.push_back({"engine/merge_barrier", parallel_batches, timing.merge_barrier_ns});
  }
}

}  // namespace heteroplace::scenario
