#include "scenario/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/sla.hpp"
#include "perfmodel/tx_model.hpp"

namespace heteroplace::scenario {

AllocationSample sample_allocations(const core::World& world) {
  AllocationSample out;
  const auto& cl = world.cluster();
  out.tx_alloc_per_app.reserve(world.apps().size());
  for (const auto& app : world.apps()) {
    double alloc = 0.0;
    for (util::VmId vm_id : cl.vm_ids()) {
      const auto& vm = cl.vm(vm_id);
      if (vm.kind == cluster::VmKind::kWebInstance && vm.app == app.id() &&
          vm.state == cluster::VmState::kRunning) {
        alloc += vm.cpu_share.get();
      }
    }
    out.tx_alloc_per_app.push_back(alloc);
    out.tx_alloc_mhz += alloc;
  }
  for (const workload::Job* job : world.active_jobs()) {
    ++out.active_jobs;
    switch (job->phase()) {
      case workload::JobPhase::kRunning:
        out.lr_alloc_mhz += job->speed().get();
        ++out.jobs_running;
        break;
      case workload::JobPhase::kPending:
        ++out.jobs_pending;
        break;
      case workload::JobPhase::kSuspended:
        ++out.jobs_suspended;
        break;
      default:
        break;
    }
  }
  return out;
}

ExperimentSummary merge_summaries(const std::vector<ExperimentSummary>& parts) {
  ExperimentSummary out;
  if (parts.empty()) return out;
  out.scenario = parts.front().scenario;
  out.policy = parts.front().policy;
  double goal_met_weighted = 0.0;
  for (const auto& p : parts) {
    out.jobs_submitted += p.jobs_submitted;
    out.jobs_completed += p.jobs_completed;
    goal_met_weighted += p.goal_met_fraction * static_cast<double>(p.jobs_completed);
    out.completion_ratio.merge(p.completion_ratio);
    out.job_utility.merge(p.job_utility);
    out.tx_utility.merge(p.tx_utility);
    out.lr_utility.merge(p.lr_utility);
    out.equalization_gap.merge(p.equalization_gap);
    out.actions.starts += p.actions.starts;
    out.actions.suspends += p.actions.suspends;
    out.actions.resumes += p.actions.resumes;
    out.actions.migrations += p.actions.migrations;
    out.actions.instance_starts += p.actions.instance_starts;
    out.actions.instance_stops += p.actions.instance_stops;
    out.actions.resizes += p.actions.resizes;
    out.cycles += p.cycles;
    out.sim_end_time_s = std::max(out.sim_end_time_s, p.sim_end_time_s);
    out.invariant_violations += p.invariant_violations;
  }
  if (out.jobs_completed > 0) {
    out.goal_met_fraction = goal_met_weighted / static_cast<double>(out.jobs_completed);
  }
  return out;
}

void MetricsRecorder::on_cycle(const core::CycleReport& report) {
  const double t = report.t.get();
  const auto& d = report.diag;

  // Figure 1 inputs (policy side): average hypothetical utility of jobs.
  if (d.active_jobs > 0) {
    series_.add("lr_hyp_utility", t, d.jobs_avg_hyp_utility);
    summary_.lr_utility.add(d.jobs_avg_hyp_utility);
    if (have_tx_utility_) {
      const double gap = std::fabs(last_tx_utility_ - d.jobs_avg_hyp_utility);
      if (d.contended) summary_.equalization_gap.add(gap);
      series_.add("utility_gap", t, gap);
    }
  }
  if (!std::isnan(d.u_star)) series_.add("u_star", t, d.u_star);

  // Figure 2 demand curves.
  series_.add("lr_demand_mhz", t, d.jobs_demand.get());
  series_.add("lr_target_mhz", t, d.jobs_target.get());
  double tx_demand = 0.0;
  double tx_target = 0.0;
  for (const auto& a : d.apps) {
    tx_demand += a.demand.get();
    tx_target += a.target.get();
  }
  series_.add("tx_demand_mhz", t, tx_demand);
  series_.add("tx_target_mhz", t, tx_target);

  // Queue/churn series.
  series_.add("active_jobs", t, d.active_jobs);
  series_.add("jobs_waiting", t, d.solver.jobs_waiting);
  series_.add("suspends", t, static_cast<double>(report.actions.suspends));
  series_.add("migrations", t, static_cast<double>(report.actions.migrations));
  series_.add("instance_starts", t, static_cast<double>(report.actions.instance_starts));

  summary_.actions.starts += report.actions.starts;
  summary_.actions.suspends += report.actions.suspends;
  summary_.actions.resumes += report.actions.resumes;
  summary_.actions.migrations += report.actions.migrations;
  summary_.actions.instance_starts += report.actions.instance_starts;
  summary_.actions.instance_stops += report.actions.instance_stops;
  summary_.actions.resizes += report.actions.resizes;
  ++summary_.cycles;
}

void MetricsRecorder::sample(util::Seconds now) { sample(now, sample_allocations(*world_)); }

void MetricsRecorder::sample(util::Seconds now, const AllocationSample& alloc) {
  const double t = now.get();

  // Measured allocations (Figure 2 "satisfied demand" curves).
  double u_tx_weighted = 0.0;
  double importance_total = 0.0;
  for (std::size_t i = 0; i < world_->apps().size(); ++i) {
    const auto& app = world_->apps()[i];
    const double app_alloc = alloc.tx_alloc_per_app[i];
    const double lambda = app.arrival_rate(now);
    // Report *raw* utility (the equalizer works on raw/importance).
    const double w = app.spec().importance > 0.0 ? app.spec().importance : 1.0;
    const double u = tx_model_->utility(app.spec(), lambda, util::CpuMhz{app_alloc}) * w;
    series_.add("tx_utility_" + app.spec().name, t, u);
    series_.add("tx_alloc_mhz_" + app.spec().name, t, app_alloc);
    const auto perf = perfmodel::evaluate_tx_app(app, now, util::CpuMhz{app_alloc});
    series_.add("tx_rt_" + app.spec().name, t, perf.response_time.get());
    if (sla_ != nullptr) {
      sla_->on_tx_sample(app.spec().name, t, perf.response_time.get(), app.spec().rt_goal.get());
    }
    u_tx_weighted += u;
    importance_total += 1.0;
  }
  series_.add("tx_alloc_mhz", t, alloc.tx_alloc_mhz);
  if (importance_total > 0.0) {
    const double u_tx = u_tx_weighted / importance_total;
    series_.add("tx_utility", t, u_tx);
    summary_.tx_utility.add(u_tx);
    last_tx_utility_ = u_tx;
    have_tx_utility_ = true;
  }

  series_.add("lr_alloc_mhz", t, alloc.lr_alloc_mhz);
  series_.add("jobs_running", t, alloc.jobs_running);
  series_.add("jobs_pending", t, alloc.jobs_pending);
  series_.add("jobs_suspended", t, alloc.jobs_suspended);
  series_.add("jobs_completed", t, static_cast<double>(world_->completed_count()));
}

void MetricsRecorder::on_job_completed(const workload::Job& job) {
  ++summary_.jobs_completed;
  const double ratio = (job.completion_time().get() - job.spec().submit_time.get()) /
                       job.spec().completion_goal.get();
  summary_.completion_ratio.add(ratio);
  const double w = job.spec().importance > 0.0 ? job.spec().importance : 1.0;
  const double u = w * job_model_->utility_at_completion(job.spec(), job.completion_time());
  summary_.job_utility.add(u);
  const long met = ratio <= 1.0 ? 1 : 0;
  // goal_met_fraction finalized from counts at the end.
  summary_.goal_met_fraction += static_cast<double>(met);
}

}  // namespace heteroplace::scenario
