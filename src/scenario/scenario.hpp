#pragma once

// Scenario descriptions: everything needed to run an experiment —
// cluster topology, workloads, controller configuration — plus builders
// for the paper's Section 3 evaluation (and scaled-down variants used in
// tests and fast ablations).

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/actions.hpp"
#include "core/placement_problem.hpp"
#include "workload/job_factory.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::scenario {

struct ClusterSpec {
  int nodes{25};
  double cpu_per_node_mhz{12000.0};  // 4 processors × 3000 MHz
  double mem_per_node_mb{4096.0};
};

/// Job-stream specification: a phased Poisson arrival process over a job
/// template. The paper uses one phase (800 jobs, mean gap 260 s); a
/// second phase lets experiments model the end-of-run rate decrease
/// explicitly.
struct JobStreamSpec {
  long count{800};
  double mean_interarrival_s{260.0};
  long tail_count{0};               // optional slower second phase
  double tail_mean_interarrival_s{0.0};
  workload::JobTemplate tmpl;
  std::string utility_shape{"piecewise"};
};

struct TxAppScenario {
  workload::TxAppSpec spec;
  workload::DemandTrace trace;
};

struct ControllerSpec {
  double cycle_s{600.0};
  cluster::ActionLatencies latencies;
  core::SolverConfig solver;
};

/// Power & energy subsystem configuration. Disabled by default: a
/// power-disabled run takes exactly the pre-power code path and
/// reproduces its output bit for bit (pinned by tests/power_test.cpp).
struct PowerSpec {
  bool enabled{false};
  /// Consolidation policy: "none" (meter only) or "idle-park".
  std::string policy{"idle-park"};
  /// Policy evaluation period; 0 = use the control cycle.
  double check_interval_s{0.0};
  double idle_timeout_s{1800.0};
  double headroom_factor{1.25};
  int min_active_nodes{1};
  /// Per-domain draw cap in watts (0 = uncapped); enforced by P-state
  /// throttling.
  double cap_w{0.0};
  /// Sleep depth for parked nodes: "standby" or "off".
  std::string park_state{"standby"};
  // Node power table (see power::PowerModel::ladder).
  double active_w{220.0};
  double standby_w{15.0};
  double off_w{0.0};
  double park_latency_s{10.0};
  double wake_latency_s{60.0};
  /// DVFS ladder depth in [1, 4] (1 = no throttling available).
  int pstates{4};
};

struct Scenario {
  std::string name{"scenario"};
  ClusterSpec cluster;
  std::vector<TxAppScenario> apps;
  JobStreamSpec jobs;
  ControllerSpec controller;
  PowerSpec power;
  /// Simulated horizon; 0 = run until every submitted job completes.
  double horizon_s{0.0};
  /// Sampling period for the time-series recorder.
  double sample_interval_s{600.0};
  std::uint64_t seed{42};
};

/// The paper's Section 3 experiment: 25 nodes × 4 × 3000 MHz, 800
/// identical jobs (exponential inter-arrival, mean 260 s), 3 job VMs max
/// per node by memory, one constant transactional workload, 600 s control
/// cycle. Parameters not stated in the paper (job length, service demand,
/// SLA goals) are chosen so the documented qualitative phases emerge; see
/// EXPERIMENTS.md.
[[nodiscard]] Scenario section3_scenario();

/// Scaled-down Section 3 (fewer nodes/jobs, shorter jobs) for tests and
/// fast ablation sweeps. `scale` ∈ (0, 1]; 1 returns the full scenario.
[[nodiscard]] Scenario section3_scaled(double scale);

/// Two transactional classes (gold/silver, different RT goals and
/// importance) plus a job stream: the service-differentiation scenario.
[[nodiscard]] Scenario service_differentiation_scenario();

}  // namespace heteroplace::scenario
