#pragma once

// Scenario descriptions: everything needed to run an experiment —
// cluster topology, workloads, controller configuration — plus builders
// for the paper's Section 3 evaluation (and scaled-down variants used in
// tests and fast ablations).

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/actions.hpp"
#include "core/placement_problem.hpp"
#include "obs/alerts.hpp"
#include "workload/job_factory.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::scenario {

/// One named machine-class pool: the class definition plus how many
/// nodes of it the cluster hosts (config `class.<name>.*`).
struct ClassPoolSpec {
  cluster::MachineClass klass;
  int count{0};
};

struct ClusterSpec {
  int nodes{25};
  double cpu_per_node_mhz{12000.0};  // 4 processors × 3000 MHz
  double mem_per_node_mb{4096.0};
  /// Explicit machine-class pools (config `classes` + `class.<name>.*`).
  /// Empty = a scalar cluster of `nodes` identical default-class nodes,
  /// the legacy layout, bit-identical to before classes existed. When
  /// non-empty the scalar fields above are unused (the loader rejects
  /// mixing the two spellings).
  std::vector<ClassPoolSpec> classes;

  [[nodiscard]] bool heterogeneous() const { return !classes.empty(); }
  /// Pool counts summed; `nodes` for a scalar spec.
  [[nodiscard]] int total_nodes() const;
  /// Largest delivered per-node capacity across pools (scalar:
  /// cpu_per_node_mhz) — the loader's per-instance CPU ceiling.
  [[nodiscard]] double max_node_cpu_mhz() const;
};

/// Job-stream specification: a phased Poisson arrival process over a job
/// template. The paper uses one phase (800 jobs, mean gap 260 s); a
/// second phase lets experiments model the end-of-run rate decrease
/// explicitly.
struct JobStreamSpec {
  long count{800};
  double mean_interarrival_s{260.0};
  long tail_count{0};               // optional slower second phase
  double tail_mean_interarrival_s{0.0};
  workload::JobTemplate tmpl;
  std::string utility_shape{"piecewise"};
};

struct TxAppScenario {
  workload::TxAppSpec spec;
  workload::DemandTrace trace;
};

struct ControllerSpec {
  double cycle_s{600.0};
  cluster::ActionLatencies latencies;
  core::SolverConfig solver;
};

/// Power & energy subsystem configuration. Disabled by default: a
/// power-disabled run takes exactly the pre-power code path and
/// reproduces its output bit for bit (pinned by tests/power_test.cpp).
struct PowerSpec {
  bool enabled{false};
  /// Consolidation policy: "none" (meter only) or "idle-park".
  std::string policy{"idle-park"};
  /// Policy evaluation period; 0 = use the control cycle.
  double check_interval_s{0.0};
  double idle_timeout_s{1800.0};
  double headroom_factor{1.25};
  int min_active_nodes{1};
  /// Per-domain draw cap in watts (0 = uncapped); enforced by P-state
  /// throttling.
  double cap_w{0.0};
  /// Sleep depth for parked nodes: "standby" or "off".
  std::string park_state{"standby"};
  // Node power table (see power::PowerModel::ladder).
  double active_w{220.0};
  double standby_w{15.0};
  double off_w{0.0};
  double park_latency_s{10.0};
  double wake_latency_s{60.0};
  /// DVFS ladder depth in [1, 4] (1 = no throttling available).
  int pstates{4};
};

/// One explicit fault event (see faults::FaultSchedule). Targets are
/// validated against the scenario by validate_fault_spec.
struct FaultEventSpec {
  /// "node-crash", "link-down", or "blackout".
  std::string kind{"node-crash"};
  /// node-crash / blackout: the target domain (0 in single-world runs);
  /// link-down: source domain.
  std::size_t domain{0};
  /// node-crash: node index within the domain.
  std::size_t node{0};
  /// link-down: destination domain.
  std::size_t to{0};
  double at_s{-1.0};
  double duration_s{-1.0};
  /// link-down only: fraction of bandwidth lost, in (0, 1]. 1 (the
  /// default) is a hard outage that kills in-flight transfers.
  double severity{1.0};
};

/// Fault-injection subsystem configuration. Disabled by default: a
/// faults-disabled run takes exactly the pre-fault code path and
/// reproduces its output bit for bit (pinned by tests/fault_test.cpp).
struct FaultSpec {
  bool enabled{false};
  /// Seed for the stochastic fault processes; 0 = derive from the
  /// scenario seed (so reseeding the workload reseeds the faults too).
  std::uint64_t seed{0};
  /// Horizon for stochastic window generation; 0 = the scenario horizon.
  double until_s{0.0};
  /// Periodic batch-job checkpoint interval; a crash reverts each lost
  /// job to its last checkpoint. 0 = continuous (lossless) checkpointing.
  double checkpoint_interval_s{0.0};
  /// Repair-crew capacity for node crashes: at most this many node
  /// repairs in progress at once, excess crashes queued in failure
  /// order. 0 = unlimited (the pinned pre-crew behavior).
  int max_concurrent_repairs{0};
  // Stochastic renewal processes (0 MTTF disables each; an enabled
  // process needs both MTTF and MTTR positive).
  double node_mttf_s{0.0};
  double node_mttr_s{0.0};
  double link_mttf_s{0.0};
  double link_mttr_s{0.0};
  double domain_mttf_s{0.0};
  double domain_mttr_s{0.0};
  std::vector<FaultEventSpec> events;
};

/// Observability configuration (config keys obs.*; validated by
/// scenario/obs_factory). Disabled by default: with everything off the
/// runners construct no recorder/registry/profiler at all and the run is
/// bit for bit the same as before the obs layer existed.
struct ObsSpec {
  /// Trace recorder mode: "off", "ring" (bounded in-memory buffer,
  /// optionally dumped to trace_path at end of run) or "stream"
  /// (incremental write to trace_path during the run).
  std::string trace{"off"};
  std::string trace_path;
  long trace_ring_capacity{1L << 18};
  /// Also trace the engine's own dispatch/batch/merge-barrier events.
  /// These depend on engine.threads (batches do not exist at threads=1),
  /// so they are excluded from the thread-count-invariance contract —
  /// leave off when comparing traces across thread counts.
  bool trace_engine{false};
  /// End-of-run metrics snapshot paths (Prometheus text / JSON); empty =
  /// don't write. Either one enables the metrics registry.
  std::string metrics_path;
  std::string metrics_json_path;
  /// Wall-clock per-phase profiling (ExperimentResult/FederatedResult
  /// `profile`, digest-excluded like EngineStats).
  bool profile{false};
  /// Placement decision audit log (obs/audit.hpp): "off" or "ring"
  /// (bounded per-domain ring, dumped to audit_path at end of run).
  std::string audit{"off"};
  std::string audit_path;
  long audit_ring_capacity{1L << 16};
  /// End-of-run SLA attribution report paths (obs/sla.hpp): JSON
  /// (machine-readable, byte-identical across engine thread counts) and
  /// CSV (human summary). Either one enables the SLA ledger; so does a
  /// non-empty Scenario::slos.
  std::string sla_report_path;
  std::string sla_report_csv_path;

  [[nodiscard]] bool trace_enabled() const { return trace != "off"; }
  [[nodiscard]] bool metrics_enabled() const {
    return !metrics_path.empty() || !metrics_json_path.empty();
  }
  [[nodiscard]] bool audit_enabled() const { return audit != "off"; }
  [[nodiscard]] bool sla_enabled() const {
    return !sla_report_path.empty() || !sla_report_csv_path.empty();
  }
  [[nodiscard]] bool any() const {
    return trace_enabled() || metrics_enabled() || profile || audit_enabled() || sla_enabled();
  }
};

struct Scenario {
  std::string name{"scenario"};
  ClusterSpec cluster;
  std::vector<TxAppScenario> apps;
  JobStreamSpec jobs;
  ControllerSpec controller;
  PowerSpec power;
  FaultSpec faults;
  ObsSpec obs;
  /// SLO burn-rate alert specs (config keys `slos` + `slo.<app>.*`);
  /// `app` names a tx app or "jobs". Any entry enables the SLA ledger.
  std::vector<obs::SloSpec> slos;
  /// Simulated horizon; 0 = run until every submitted job completes.
  double horizon_s{0.0};
  /// Sampling period for the time-series recorder.
  double sample_interval_s{600.0};
  std::uint64_t seed{42};
  /// Engine worker threads (config key engine.threads). 1 = the pinned
  /// serial reference; N > 1 runs same-timestamp per-domain event
  /// batches on a worker pool, bit-identical to 1 by construction.
  int engine_threads{1};
};

/// The paper's Section 3 experiment: 25 nodes × 4 × 3000 MHz, 800
/// identical jobs (exponential inter-arrival, mean 260 s), 3 job VMs max
/// per node by memory, one constant transactional workload, 600 s control
/// cycle. Parameters not stated in the paper (job length, service demand,
/// SLA goals) are chosen so the documented qualitative phases emerge; see
/// EXPERIMENTS.md.
[[nodiscard]] Scenario section3_scenario();

/// Scaled-down Section 3 (fewer nodes/jobs, shorter jobs) for tests and
/// fast ablation sweeps. `scale` ∈ (0, 1]; 1 returns the full scenario.
[[nodiscard]] Scenario section3_scaled(double scale);

/// Two transactional classes (gold/silver, different RT goals and
/// importance) plus a job stream: the service-differentiation scenario.
[[nodiscard]] Scenario service_differentiation_scenario();

}  // namespace heteroplace::scenario
