#include "util/math.hpp"

#include <algorithm>

namespace heteroplace::util {

BisectResult bisect_increasing(const std::function<double(double)>& f, double lo, double hi,
                               double x_tol, int max_iter) {
  BisectResult r;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo >= 0.0) {  // root at or below lo
    r.x = lo;
    r.fx = flo;
    r.converged = true;
    return r;
  }
  if (fhi <= 0.0) {  // root at or above hi
    r.x = hi;
    r.fx = fhi;
    r.converged = true;
    return r;
  }
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.iterations = i + 1;
    if (fmid <= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= x_tol) {
      r.x = 0.5 * (lo + hi);
      r.fx = f(r.x);
      r.converged = true;
      return r;
    }
  }
  r.x = 0.5 * (lo + hi);
  r.fx = f(r.x);
  r.converged = false;
  return r;
}

double invert_increasing(const std::function<double(double)>& g, double target, double lo,
                         double hi, double x_tol, int max_iter) {
  const auto res =
      bisect_increasing([&](double x) { return g(x) - target; }, lo, hi, x_tol, max_iter);
  return std::clamp(res.x, lo, hi);
}

double invert_decreasing(const std::function<double(double)>& g, double target, double lo,
                         double hi, double x_tol, int max_iter) {
  const auto res =
      bisect_increasing([&](double x) { return target - g(x); }, lo, hi, x_tol, max_iter);
  return std::clamp(res.x, lo, hi);
}

}  // namespace heteroplace::util
