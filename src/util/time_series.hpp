#pragma once

// Time-series recording for experiment outputs (the paper's Figures 1 and 2
// are time series of utility and of allocated/demanded MHz).

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace heteroplace::util {

/// One sampled series: (time, value) pairs, in nondecreasing time order.
class TimeSeries {
 public:
  struct Point {
    double t;
    double v;
  };

  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(double t, double v) { points_.push_back({t, v}); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Value at time t by zero-order hold (last sample at or before t).
  /// Returns 0 before the first sample.
  [[nodiscard]] double value_at(double t) const;

  /// Mean of values sampled with t in [t0, t1].
  [[nodiscard]] double mean_over(double t0, double t1) const;

  /// Summary stats over all sample values.
  [[nodiscard]] RunningStats summary() const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// A named collection of series sharing a sampling clock; CSV-exportable
/// with one time column plus one column per series.
class TimeSeriesSet {
 public:
  /// Get-or-create a series by name (insertion order is preserved).
  TimeSeries& series(const std::string& name);
  [[nodiscard]] const TimeSeries* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Record one value into the named series.
  void add(const std::string& name, double t, double v) { series(name).add(t, v); }

  /// Write "t,name1,name2,..." CSV. Rows are the union of sample times;
  /// missing values use zero-order hold. Returns the CSV text.
  [[nodiscard]] std::string to_csv() const;

  /// Write to_csv() output to a file; returns false on I/O error.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<TimeSeries> series_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace heteroplace::util
