#pragma once

// Strong identifier types for simulation entities.
//
// NodeId / VmId / JobId / AppId are all integers underneath, but mixing them
// up is a silent bug; distinct types make the compiler catch it.

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace heteroplace::util {

/// Tagged integral identifier. `Tag` is an empty struct unique per id kind.
template <typename Tag>
struct Id {
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid = std::numeric_limits<underlying_type>::max();

  underlying_type value{kInvalid};

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr underlying_type get() const { return value; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<none>";
    return os << id.value;
  }
};

struct NodeTag {};
struct VmTag {};
struct JobTag {};
struct AppTag {};
struct WorkloadTag {};

/// Physical machine in the cluster.
using NodeId = Id<NodeTag>;
/// Virtual machine (job container or web-application instance).
using VmId = Id<VmTag>;
/// Long-running job.
using JobId = Id<JobTag>;
/// Transactional (clustered web) application.
using AppId = Id<AppTag>;
/// A utility consumer in the equalizer: either a job or a transactional app.
using ConsumerId = Id<WorkloadTag>;

}  // namespace heteroplace::util

namespace std {
template <typename Tag>
struct hash<heteroplace::util::Id<Tag>> {
  size_t operator()(heteroplace::util::Id<Tag> id) const noexcept {
    return std::hash<typename heteroplace::util::Id<Tag>::underlying_type>{}(id.value);
  }
};
}  // namespace std
