#include "util/time_series.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace heteroplace::util {

double TimeSeries::value_at(double t) const {
  if (points_.empty() || t < points_.front().t) return 0.0;
  // Last point with point.t <= t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double lhs, const Point& p) { return lhs < p.t; });
  return std::prev(it)->v;
}

double TimeSeries::mean_over(double t0, double t1) const {
  RunningStats s;
  for (const auto& p : points_) {
    if (p.t >= t0 && p.t <= t1) s.add(p.v);
  }
  return s.mean();
}

RunningStats TimeSeries::summary() const {
  RunningStats s;
  for (const auto& p : points_) s.add(p.v);
  return s;
}

TimeSeries& TimeSeriesSet::series(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return series_[it->second];
  index_.emplace(name, series_.size());
  series_.emplace_back(name);
  return series_.back();
}

const TimeSeries* TimeSeriesSet::find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &series_[it->second];
}

std::vector<std::string> TimeSeriesSet::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& s : series_) out.push_back(s.name());
  return out;
}

std::string TimeSeriesSet::to_csv() const {
  std::ostringstream os;
  os << "t";
  for (const auto& s : series_) os << "," << s.name();
  os << "\n";

  std::set<double> times;
  for (const auto& s : series_) {
    for (const auto& p : s.points()) times.insert(p.t);
  }
  for (double t : times) {
    os << t;
    for (const auto& s : series_) os << "," << s.value_at(t);
    os << "\n";
  }
  return os.str();
}

bool TimeSeriesSet::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace heteroplace::util
