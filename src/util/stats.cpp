#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace heteroplace::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileEstimator::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

std::string Histogram::to_string() const {
  std::ostringstream os;
  if (underflow_ > 0) os << "(<" << lo_ << "): " << underflow_ << "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << bin_lo(i) << ".." << bin_hi(i) << ": " << counts_[i] << "\n";
  }
  if (overflow_ > 0) os << "(>=" << hi_ << "): " << overflow_ << "\n";
  return os.str();
}

}  // namespace heteroplace::util
