#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace heteroplace::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

struct LogContext {
  double sim_time_s{-1.0};
  std::uint32_t shard{kLogNoShard};
};
thread_local LogContext g_ctx;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_context(double sim_time_s, std::uint32_t shard) {
  g_ctx.sim_time_s = sim_time_s;
  g_ctx.shard = shard;
}

void clear_log_context() { g_ctx = LogContext{}; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  // Build the full line before taking the lock so the critical section is
  // one stream insertion: concurrent workers can never interleave fragments.
  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += level_name(level);
  line += "] ";
  if (g_ctx.sim_time_s >= 0.0) {
    std::ostringstream ctx;
    ctx << "[t=" << g_ctx.sim_time_s;
    if (g_ctx.shard != kLogNoShard) ctx << " s" << g_ctx.shard;
    ctx << "] ";
    line += ctx.str();
  }
  line += msg;
  line += '\n';
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << line;
}

}  // namespace heteroplace::util
