#pragma once

// Deterministic random number generation.
//
// Experiments must be bit-reproducible across platforms and standard-library
// versions, so we implement both the engine (xoshiro256**, seeded through
// splitmix64) and the distributions ourselves instead of relying on
// std::*_distribution (whose output is implementation-defined).

#include <array>
#include <cstdint>
#include <limits>

namespace heteroplace::util {

/// splitmix64: used to expand a single 64-bit seed into engine state.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, tiny state. Satisfies
/// UniformRandomBitGenerator so it can also feed <random> if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive (lo <= hi).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (inter-arrival sampling). mean > 0.
  [[nodiscard]] double exponential_mean(double mean);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal: exp(normal(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Bounded Pareto on [lo, hi] with shape alpha > 0 (heavy-tailed job sizes).
  [[nodiscard]] double bounded_pareto(double alpha, double lo, double hi);

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child stream (e.g., one per workload).
  [[nodiscard]] Rng split();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace heteroplace::util
