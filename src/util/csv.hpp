#pragma once

// Minimal CSV emission with RFC-4180-style quoting. Used for experiment and
// bench outputs so downstream plotting tools can regenerate the figures.

#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace heteroplace::util {

/// Quote a CSV field if it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streaming CSV writer over any std::ostream. Cells are appended with
/// cell(); row() terminates the line. Numeric overloads format with enough
/// precision to round-trip doubles.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  CsvWriter& cell(std::string_view s);
  CsvWriter& cell(const char* s) { return cell(std::string_view{s}); }
  CsvWriter& cell(double v);
  CsvWriter& cell(long long v);
  CsvWriter& cell(unsigned long long v);
  CsvWriter& cell(int v) { return cell(static_cast<long long>(v)); }
  CsvWriter& cell(std::size_t v) { return cell(static_cast<unsigned long long>(v)); }

  /// End the current row.
  void row();

  /// Convenience: write an entire row of strings.
  void row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
  bool at_line_start_{true};
};

}  // namespace heteroplace::util
