#pragma once

// Online and batch statistics used by the metric recorder and benches.

#include <cstddef>
#include <string>
#include <vector>

namespace heteroplace::util {

/// Numerically stable running mean/variance (Welford), with min/max.
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator (parallel reduction of per-replica stats).
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Batch percentile estimator: stores samples, answers arbitrary quantiles.
/// Fine at simulation scale (up to a few million samples).
class PercentileEstimator {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// q in [0, 1]; linear interpolation between order statistics.
  /// Returns 0 for an empty estimator.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{false};
};

/// Fixed-width histogram over [lo, hi) with under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Render as "lo..hi: count" lines (debug / report output).
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace heteroplace::util
