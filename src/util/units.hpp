#pragma once

// Strong unit types used throughout heteroplace.
//
// The managed resources in the paper are CPU power (expressed in MHz, as in
// the paper's Figure 2) and memory (MB). Simulated time is in seconds.
// Using distinct types prevents the classic bug of adding megahertz to
// megabytes; the types are thin wrappers over double with full arithmetic.

#include <compare>
#include <ostream>

namespace heteroplace::util {

/// CRTP base providing arithmetic for a scalar quantity wrapper.
///
/// Derived types behave like a `double` tagged with a unit: they support
/// addition/subtraction with themselves, scaling by dimensionless factors,
/// and ratios (which are dimensionless doubles).
template <typename Derived>
struct Quantity {
  double value{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  [[nodiscard]] constexpr double get() const { return value; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.value + b.value}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.value - b.value}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.value * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.value * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.value / s}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.value / b.value; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.value}; }

  constexpr Derived& operator+=(Derived b) {
    value += b.value;
    return self();
  }
  constexpr Derived& operator-=(Derived b) {
    value -= b.value;
    return self();
  }
  constexpr Derived& operator*=(double s) {
    value *= s;
    return self();
  }

  friend constexpr auto operator<=>(const Quantity& a, const Quantity& b) = default;

  friend std::ostream& operator<<(std::ostream& os, const Quantity& q) { return os << q.value; }

 private:
  constexpr Derived& self() { return static_cast<Derived&>(*this); }
};

/// CPU power in MHz. The paper reports CPU allocation and demand in MHz
/// (Figure 2); a 3 GHz processor contributes 3000 MHz of capacity.
struct CpuMhz : Quantity<CpuMhz> {
  using Quantity::Quantity;
};

/// Memory in megabytes.
struct MemMb : Quantity<MemMb> {
  using Quantity::Quantity;
};

/// Simulated wall-clock time / durations in seconds.
struct Seconds : Quantity<Seconds> {
  using Quantity::Quantity;
};

/// CPU work in MHz-seconds ("megacycles"): the integral of speed over time.
/// A job with 3.0e7 MHz·s of work takes 10,000 s on a 3000 MHz processor.
struct MhzSeconds : Quantity<MhzSeconds> {
  using Quantity::Quantity;
};

/// Work accumulated by running at `speed` for `dt`.
[[nodiscard]] constexpr MhzSeconds operator*(CpuMhz speed, Seconds dt) {
  return MhzSeconds{speed.get() * dt.get()};
}
[[nodiscard]] constexpr MhzSeconds operator*(Seconds dt, CpuMhz speed) { return speed * dt; }

/// Time to finish `work` at constant `speed` (caller guards speed > 0).
[[nodiscard]] constexpr Seconds operator/(MhzSeconds work, CpuMhz speed) {
  return Seconds{work.get() / speed.get()};
}

/// Speed needed to finish `work` within `dt` (caller guards dt > 0).
[[nodiscard]] constexpr CpuMhz operator/(MhzSeconds work, Seconds dt) {
  return CpuMhz{work.get() / dt.get()};
}

inline namespace literals {
constexpr CpuMhz operator""_mhz(long double v) { return CpuMhz{static_cast<double>(v)}; }
constexpr CpuMhz operator""_mhz(unsigned long long v) { return CpuMhz{static_cast<double>(v)}; }
constexpr MemMb operator""_mb(long double v) { return MemMb{static_cast<double>(v)}; }
constexpr MemMb operator""_mb(unsigned long long v) { return MemMb{static_cast<double>(v)}; }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace heteroplace::util
