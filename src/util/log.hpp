#pragma once

// Tiny leveled logger. Controllers log placement decisions at Debug; tests
// and benches keep the default at Warn so output stays clean.

#include <cstdint>
#include <sstream>
#include <string>

namespace heteroplace::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level that is emitted.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line at `level` (no-op if below the global level). Thread-safe:
/// one line per call, never interleaved, prefixed with the calling thread's
/// log context (sim time and shard) when one is set.
void log_line(LogLevel level, const std::string& msg);

/// Shard value meaning "no shard" in the log context (mirrors sim::kNoShard;
/// duplicated here so util does not depend on sim).
inline constexpr std::uint32_t kLogNoShard = 0xffffffffu;

/// Thread-local ambient context stamped onto every emitted line, e.g.
/// "[WARN] [t=600 s3] msg". The engine sets it per dispatched event (worker
/// threads get it per batch item, tagged with the item's shard), so lines
/// from concurrently-running workers stay attributable. A negative time
/// clears the time part; kLogNoShard omits the shard part.
void set_log_context(double sim_time_s, std::uint32_t shard);
void clear_log_context();

namespace detail {
/// RAII line builder: streams into a buffer, emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogStream log_debug() { return detail::LogStream{LogLevel::kDebug}; }
[[nodiscard]] inline detail::LogStream log_info() { return detail::LogStream{LogLevel::kInfo}; }
[[nodiscard]] inline detail::LogStream log_warn() { return detail::LogStream{LogLevel::kWarn}; }
[[nodiscard]] inline detail::LogStream log_error() { return detail::LogStream{LogLevel::kError}; }

}  // namespace heteroplace::util
