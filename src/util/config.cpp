#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace heteroplace::util {

namespace {
std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ConfigError("config line " + std::to_string(lineno) + ": missing '=' in \"" + line +
                        "\"");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw ConfigError("config line " + std::to_string(lineno) + ": empty key");
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      throw ConfigError("unexpected argument (expected --key=value): " + tok);
    }
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      // Bare flag --foo means foo=true.
      cfg.values_[tok.substr(2)] = "true";
      continue;
    }
    const std::string key = tok.substr(2, eq - 2);
    if (key.empty()) throw ConfigError("empty key in argument: " + tok);
    cfg.values_[key] = tok.substr(eq + 1);
  }
  return cfg;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& def) const {
  auto v = raw(key);
  return v ? *v : def;
}

double Config::get_double(const std::string& key, double def) const {
  auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw ConfigError("");
    return out;
  } catch (...) {
    throw ConfigError("config key '" + key + "': not a number: \"" + *v + "\"");
  }
}

long long Config::get_int(const std::string& key, long long def) const {
  auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(*v, &pos);
    if (pos != v->size()) throw ConfigError("");
    return out;
  } catch (...) {
    throw ConfigError("config key '" + key + "': not an integer: \"" + *v + "\"");
  }
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto v = raw(key);
  if (!v) return def;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw ConfigError("config key '" + key + "': not a boolean: \"" + *v + "\"");
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace heteroplace::util
