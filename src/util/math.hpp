#pragma once

// Small numeric utilities: robust bisection, monotone inversion, clamping,
// approximate comparisons. These underpin the utility/demand curve inversion
// at the heart of the hypothetical-utility equalizer.

#include <cmath>
#include <functional>
#include <limits>

namespace heteroplace::util {

/// Absolute-or-relative approximate equality.
[[nodiscard]] inline bool almost_equal(double a, double b, double abs_tol = 1e-9,
                                       double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

/// Result of a bisection search.
struct BisectResult {
  double x{std::numeric_limits<double>::quiet_NaN()};
  double fx{std::numeric_limits<double>::quiet_NaN()};
  int iterations{0};
  bool converged{false};
};

/// Find x in [lo, hi] with f(x) ~= 0 for a function that is monotone
/// non-decreasing in x (f(lo) <= 0 <= f(hi) is assumed; endpoints are
/// clamped if the root lies outside). Tolerances are on the x interval.
///
/// The equalizer relies on this being robust to flat regions (piecewise
/// utility functions have them), hence plain bisection rather than secant.
[[nodiscard]] BisectResult bisect_increasing(const std::function<double(double)>& f, double lo,
                                             double hi, double x_tol = 1e-9, int max_iter = 200);

/// Invert a monotone non-decreasing function g on [lo, hi]: find x with
/// g(x) ~= target. If target <= g(lo) returns lo; if target >= g(hi)
/// returns hi.
[[nodiscard]] double invert_increasing(const std::function<double(double)>& g, double target,
                                       double lo, double hi, double x_tol = 1e-9,
                                       int max_iter = 200);

/// Invert a monotone non-increasing function g on [lo, hi].
[[nodiscard]] double invert_decreasing(const std::function<double(double)>& g, double target,
                                       double lo, double hi, double x_tol = 1e-9,
                                       int max_iter = 200);

/// Linear interpolation: value at `t` on the segment (x0,y0)-(x1,y1).
[[nodiscard]] inline double lerp_at(double x0, double y0, double x1, double y1, double t) {
  if (x1 == x0) return y0;
  const double a = (t - x0) / (x1 - x0);
  return y0 + a * (y1 - y0);
}

}  // namespace heteroplace::util
