#include "util/csv.hpp"

#include <cstdio>

namespace heteroplace::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quote = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter& CsvWriter::cell(std::string_view s) {
  if (!at_line_start_) os_ << ',';
  os_ << csv_escape(s);
  at_line_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return cell(std::string_view{buf});
}

CsvWriter& CsvWriter::cell(long long v) {
  if (!at_line_start_) os_ << ',';
  os_ << v;
  at_line_start_ = false;
  return *this;
}

CsvWriter& CsvWriter::cell(unsigned long long v) {
  if (!at_line_start_) os_ << ',';
  os_ << v;
  at_line_start_ = false;
  return *this;
}

void CsvWriter::row() {
  os_ << '\n';
  at_line_start_ = true;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) cell(c);
  row();
}

}  // namespace heteroplace::util
