#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace heteroplace::util {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return (*this)();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + v % range;
}

double Rng::exponential_mean(double mean) {
  assert(mean > 0.0);
  // -mean * log(1 - U); 1 - uniform01() is in (0, 1], so log is finite.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw both uniforms every call so the stream is stateless.
  const double u1 = 1.0 - uniform01();  // (0, 1]
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::split() {
  // A fresh seed drawn from this stream yields an independent child.
  return Rng{(*this)()};
}

}  // namespace heteroplace::util
