#pragma once

// Key=value configuration: parsed from files ("key = value" lines, '#'
// comments) and from command lines ("--key=value"). Benches and examples
// use it so every experiment parameter is overridable without recompiling.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace heteroplace::util {

/// Thrown when a value exists but cannot be parsed as the requested type.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  /// Later assignments override earlier ones.
  static Config from_string(const std::string& text);

  /// Parse argv-style "--key=value" tokens; unknown tokens raise
  /// ConfigError. argv[0] is skipped.
  static Config from_args(int argc, const char* const* argv);

  /// Merge: entries in `other` override entries here.
  void merge(const Config& other);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }

  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  /// Typed getters with defaults. Throw ConfigError on malformed values.
  [[nodiscard]] std::string get_string(const std::string& key, const std::string& def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] long long get_int(const std::string& key, long long def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace heteroplace::util
