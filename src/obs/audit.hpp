#pragma once

// Placement decision audit log: structured per-cycle records of why the
// solver placed, kept, evicted, migrated or rejected each consumer, and of
// the lifecycle actions the executor then applied. Bounded ring per domain
// (old records are dropped, counted), end-of-run JSON dump. Opt-in via
// obs.audit=* keys; a null AuditLog* in ObsContext keeps the emission
// sites branch-per-site cheap and audited-off runs bit-identical.
//
// Same threading contract as SlaLedger: one AuditLog per domain, written
// only by that domain's solver/executor calls (which run inside that
// domain's sharded batch items) — no locks needed, output byte-identical
// across engine thread counts.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace heteroplace::obs {

struct AuditRecord {
  double t{0.0};
  /// 'J' = batch job, 'A' = tx-app instance decision, 'X' = executor action.
  char kind{'J'};
  /// Verdict string literal: "place", "keep", "evict", "reject",
  /// "migrate", "relocate", "start", "suspend", "resume" — the recorder
  /// stores the pointer, so literals only.
  const char* verdict{""};
  std::int64_t consumer{-1};  // job or app id
  int node{-1};               // decision target node (-1 = none)
  int group{-1};              // compatibility group at decision time (-1 = n/a)
  double headroom{0.0};       // target-node headroom at decision time
  std::int64_t victim{-1};    // displaced job (evictions) / displacing consumer
  double slack{0.0};          // victim's SLA-pressure (urgency) at eviction
};

class AuditLog {
 public:
  AuditLog(std::string domain, std::size_t capacity);

  void record(const AuditRecord& r);

  [[nodiscard]] const std::string& domain() const { return domain_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  /// Retained records, oldest first.
  [[nodiscard]] std::vector<AuditRecord> snapshot() const;

 private:
  std::string domain_;
  std::vector<AuditRecord> ring_;
  std::size_t capacity_;
  std::size_t next_{0};
  std::uint64_t total_{0};
};

/// Render the merged audit dump (logs in fixed domain order) as JSON.
[[nodiscard]] std::string render_audit_json(const std::vector<const AuditLog*>& logs);

}  // namespace heteroplace::obs
