#include "obs/audit.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/sla.hpp"  // format_double

namespace heteroplace::obs {

AuditLog::AuditLog(std::string domain, std::size_t capacity)
    : domain_(std::move(domain)), capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("AuditLog: capacity must be positive");
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void AuditLog::record(const AuditRecord& r) {
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
    return;
  }
  ring_[next_] = r;
  next_ = (next_ + 1) % capacity_;
}

std::vector<AuditRecord> AuditLog::snapshot() const {
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string render_audit_json(const std::vector<const AuditLog*>& logs) {
  std::ostringstream os;
  os << "{\"schema\":\"heteroplace-audit/v1\",\"domains\":[";
  for (std::size_t d = 0; d < logs.size(); ++d) {
    const AuditLog* log = logs[d];
    if (d != 0) os << ",";
    os << "{\"domain\":\"" << log->domain() << "\",\"total\":" << log->total()
       << ",\"dropped\":" << log->dropped() << ",\"records\":[";
    const std::vector<AuditRecord> records = log->snapshot();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const AuditRecord& r = records[i];
      if (i != 0) os << ",";
      os << "{\"t\":" << format_double(r.t) << ",\"kind\":\"" << r.kind << "\",\"verdict\":\""
         << r.verdict << "\",\"consumer\":" << r.consumer << ",\"node\":" << r.node
         << ",\"group\":" << r.group << ",\"headroom\":" << format_double(r.headroom);
      if (r.victim >= 0) os << ",\"victim\":" << r.victim << ",\"slack\":" << format_double(r.slack);
      os << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace heteroplace::obs
