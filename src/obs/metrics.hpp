#pragma once

// Metrics registry: counters, gauges and histograms that subsystems
// register into, snapshot-exportable as Prometheus text exposition format
// and as JSON. Replaces/unifies ad-hoc summary fields: the runners publish
// the end-of-run summary and engine stats as gauges next to the live
// instruments the subsystems increment during the run.
//
// Thread-safety: instruments are lock-free atomics with relaxed ordering —
// safe to increment from worker threads during parallel batches. The
// registry itself (registration, export) must only be used from a serial
// context: subsystems register in set_obs() before the run, and snapshots
// are taken after it. Histogram bucket bounds are explicit and fixed at
// registration, so exported output is deterministic.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace heteroplace::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper bounds; an implicit +Inf
  /// bucket is appended. Throws std::invalid_argument on bad bounds.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size = bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Registry of named metric families. A family has one type and help text
/// and one sample per label set ("" = unlabeled, else pre-rendered
/// Prometheus label text such as `domain="dc0"`). Re-registering the same
/// (name, labels) returns the existing instrument; registering a name with
/// a different type throws util-style std::invalid_argument.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help, const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const std::string& labels = "");

  /// Prometheus text exposition format (# HELP / # TYPE + samples), families
  /// and label sets in lexicographic order — deterministic output.
  [[nodiscard]] std::string prometheus_text() const;
  /// The same snapshot as a JSON object keyed by family name.
  [[nodiscard]] std::string json() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    Type type{Type::kCounter};
    std::string help;
    std::map<std::string, std::unique_ptr<Counter>> counters;      // by label text
    std::map<std::string, std::unique_ptr<Gauge>> gauges;          // by label text
    std::map<std::string, std::unique_ptr<Histogram>> histograms;  // by label text
  };
  Family& family(const std::string& name, Type type, const std::string& help);

  std::map<std::string, Family> families_;
};

/// Render one `key="value"` Prometheus label pair, escaping the value per
/// the text exposition spec (`\` -> `\\`, `"` -> `\"`, newline -> `\n`).
/// Use this wherever label text is built from runtime strings (domain and
/// app names); join multiple pairs with ",".
[[nodiscard]] std::string prometheus_label(const std::string& key, const std::string& value);

/// Parse Prometheus text exposition format back into sample name (with
/// label text, exactly as written) -> value. Ignores # comment lines.
/// Throws std::invalid_argument on malformed sample lines. Used by the
/// round-trip test and the trace_check tool.
[[nodiscard]] std::map<std::string, double> parse_prometheus_text(const std::string& text);

}  // namespace heteroplace::obs
