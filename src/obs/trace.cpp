#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <stdexcept>

namespace heteroplace::obs {

namespace {

// One recorder may be bound to a worker thread at a time (the engine owns a
// single observer). The binding routes emissions made during a batch item to
// that item's staging buffer.
struct TlsBinding {
  const TraceRecorder* recorder{nullptr};
  std::vector<TraceEvent>* buf{nullptr};
};
thread_local TlsBinding t_binding;

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

TraceMode trace_mode_from_string(const std::string& s) {
  if (s == "off") return TraceMode::kOff;
  if (s == "ring") return TraceMode::kRing;
  if (s == "stream") return TraceMode::kStream;
  throw std::invalid_argument("unknown trace mode '" + s + "' (expected off|ring|stream)");
}

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kEngine:
      return "engine";
    case Lane::kController:
      return "controller";
    case Lane::kExecutor:
      return "executor";
    case Lane::kRouter:
      return "router";
    case Lane::kMigration:
      return "migration";
    case Lane::kPower:
      return "power";
    case Lane::kFaults:
      return "faults";
    case Lane::kWorkload:
      return "workload";
    case Lane::kCount:
      break;
  }
  return "?";
}

bool TraceEvent::operator==(const TraceEvent& o) const {
  if (ts_s != o.ts_s || id != o.id || pid != o.pid || tid != o.tid || phase != o.phase ||
      n_args != o.n_args) {
    return false;
  }
  if (std::strcmp(name, o.name) != 0) return false;
  for (std::uint8_t i = 0; i < n_args; ++i) {
    if (std::strcmp(args[i].key, o.args[i].key) != 0 || args[i].value != o.args[i].value) {
      return false;
    }
  }
  return true;
}

TraceRecorder::TraceRecorder(const Options& opts) : opts_(opts) {
  if (opts_.mode == TraceMode::kRing) {
    if (opts_.ring_capacity == 0) throw std::invalid_argument("trace ring capacity must be > 0");
    ring_.resize(opts_.ring_capacity);
  } else if (opts_.mode == TraceMode::kStream) {
    if (opts_.path.empty()) throw std::invalid_argument("stream trace mode requires a path");
    out_.open(opts_.path, std::ios::trunc);
    if (!out_) throw std::runtime_error("cannot open trace path '" + opts_.path + "' for writing");
    out_ << "{\"traceEvents\":[";
    stream_buf_.reserve(8192);
  }
}

TraceRecorder::~TraceRecorder() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; finish() is normally called explicitly.
  }
}

void TraceRecorder::set_process_name(std::uint32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void TraceRecorder::emit(std::uint32_t pid, Lane lane, char phase, const char* name,
                         std::uint64_t id, double t_s, std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ts_s = t_s;
  ev.id = id;
  ev.name = name;
  ev.pid = pid;
  ev.tid = static_cast<std::uint8_t>(lane);
  ev.phase = phase;
  ev.n_args = 0;
  for (const TraceArg& a : args) {
    if (ev.n_args >= 3) break;
    ev.args[ev.n_args++] = a;
  }
  if (t_binding.recorder == this && t_binding.buf != nullptr) {
    // Worker-side: stage per batch item; merged in pop order at the barrier.
    t_binding.buf->push_back(ev);
    return;
  }
  append_main(ev);
}

void TraceRecorder::append_main(const TraceEvent& ev) {
  note_lane(ev.pid, static_cast<Lane>(ev.tid));
  if (opts_.mode == TraceMode::kRing) {
    if (ring_size_ == ring_.size()) ++dropped_;
    else ++ring_size_;
    ring_[ring_next_] = ev;
    ring_next_ = (ring_next_ + 1) % ring_.size();
    return;
  }
  stream_buf_.push_back(ev);
  ++streamed_;
  if (stream_buf_.size() >= 8192) flush_stream_buffer();
}

void TraceRecorder::note_lane(std::uint32_t pid, Lane lane) {
  lanes_seen_[pid] |= 1u << static_cast<unsigned>(lane);
}

void TraceRecorder::instant(std::uint32_t pid, Lane lane, const char* name, double t_s,
                            std::initializer_list<TraceArg> args) {
  emit(pid, lane, 'i', name, 0, t_s, args);
}

void TraceRecorder::begin(std::uint32_t pid, Lane lane, const char* name, double t_s,
                          std::initializer_list<TraceArg> args) {
  emit(pid, lane, 'B', name, 0, t_s, args);
}

void TraceRecorder::end(std::uint32_t pid, Lane lane, const char* name, double t_s,
                        std::initializer_list<TraceArg> args) {
  emit(pid, lane, 'E', name, 0, t_s, args);
}

void TraceRecorder::async_begin(std::uint32_t pid, Lane lane, const char* name, std::uint64_t id,
                                double t_s, std::initializer_list<TraceArg> args) {
  emit(pid, lane, 'b', name, id, t_s, args);
}

void TraceRecorder::async_end(std::uint32_t pid, Lane lane, const char* name, std::uint64_t id,
                              double t_s, std::initializer_list<TraceArg> args) {
  emit(pid, lane, 'e', name, id, t_s, args);
}

void TraceRecorder::on_serial_event(double time, int priority) {
  if (!opts_.engine_lane) return;
  instant(0, Lane::kEngine, "dispatch", time,
          {{"priority", static_cast<double>(priority)}});
}

void TraceRecorder::on_batch_begin(double time, int priority, std::size_t items,
                                   std::size_t groups) {
  if (staging_.size() < items) staging_.resize(items);
  for (std::size_t i = 0; i < items; ++i) staging_[i].clear();
  batch_active_ = true;
  if (opts_.engine_lane) {
    instant(0, Lane::kEngine, "batch", time,
            {{"priority", static_cast<double>(priority)},
             {"items", static_cast<double>(items)},
             {"groups", static_cast<double>(groups)}});
  }
}

void TraceRecorder::on_batch_item_begin(std::size_t item) {
  t_binding.recorder = this;
  t_binding.buf = &staging_[item];
}

void TraceRecorder::on_batch_item_end() { t_binding = TlsBinding{}; }

void TraceRecorder::on_batch_end(double time) {
  // Merge barrier: replay worker-side emissions in batch pop order — the
  // exact order the same callbacks produce them at threads=1.
  for (std::vector<TraceEvent>& buf : staging_) {
    for (const TraceEvent& ev : buf) append_main(ev);
    buf.clear();
  }
  batch_active_ = false;
  if (opts_.engine_lane) instant(0, Lane::kEngine, "merge_barrier", time);
}

std::size_t TraceRecorder::recorded() const {
  return opts_.mode == TraceMode::kRing ? ring_size_ : static_cast<std::size_t>(streamed_);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  if (opts_.mode != TraceMode::kRing) return out;
  out.reserve(ring_size_);
  const std::size_t cap = ring_.size();
  const std::size_t start = (ring_next_ + cap - ring_size_) % cap;
  for (std::size_t i = 0; i < ring_size_; ++i) out.push_back(ring_[(start + i) % cap]);
  return out;
}

void TraceRecorder::write_events_json(std::ostream& os, const TraceEvent* evs, std::size_t n,
                                      bool& first) const {
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = evs[i];
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << ev.name << "\",\"ph\":\"" << ev.phase << "\",\"ts\":";
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.3f", ev.ts_s * 1e6);
    os << ts << ",\"pid\":" << ev.pid << ",\"tid\":" << static_cast<unsigned>(ev.tid);
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    if (ev.phase == 'b' || ev.phase == 'e') {
      os << ",\"cat\":\"" << lane_name(static_cast<Lane>(ev.tid)) << "\",\"id\":" << ev.id;
    }
    if (ev.n_args > 0) {
      os << ",\"args\":{";
      for (std::uint8_t a = 0; a < ev.n_args; ++a) {
        if (a > 0) os << ",";
        os << "\"" << ev.args[a].key << "\":";
        write_number(os, ev.args[a].value);
      }
      os << "}";
    }
    os << "}";
  }
}

void TraceRecorder::write_metadata_json(std::ostream& os, bool& first) const {
  for (const auto& [pid, name] : process_names_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(os, name);
    os << "\"}}";
  }
  for (const auto& [pid, mask] : lanes_seen_) {
    for (unsigned lane = 0; lane < static_cast<unsigned>(Lane::kCount); ++lane) {
      if ((mask & (1u << lane)) == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
         << ",\"tid\":" << lane << ",\"args\":{\"name\":\""
         << lane_name(static_cast<Lane>(lane)) << "\"}}";
    }
  }
}

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const std::vector<TraceEvent> evs = snapshot();
  write_events_json(os, evs.data(), evs.size(), first);
  write_metadata_json(os, first);
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::flush_stream_buffer() {
  write_events_json(out_, stream_buf_.data(), stream_buf_.size(), stream_first_);
  stream_buf_.clear();
}

void TraceRecorder::finish() {
  if (finished_ || !enabled()) return;
  finished_ = true;
  if (opts_.mode == TraceMode::kStream) {
    flush_stream_buffer();
    write_metadata_json(out_, stream_first_);
    out_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
    out_.close();
    if (!out_) throw std::runtime_error("error writing trace to '" + opts_.path + "'");
    return;
  }
  if (!opts_.path.empty()) {
    std::ofstream f(opts_.path, std::ios::trunc);
    if (!f) throw std::runtime_error("cannot open trace path '" + opts_.path + "' for writing");
    write_json(f);
    f.close();
    if (!f) throw std::runtime_error("error writing trace to '" + opts_.path + "'");
  }
}

}  // namespace heteroplace::obs
