#pragma once

// Structured trace recorder: deterministic, sim-time-stamped spans and
// instant events from every control-plane subsystem, exported as Chrome
// trace-event JSON (load in Perfetto / chrome://tracing).
//
// Mapping: pid = domain (0 = the global/serial spine: engine, router,
// migration manager, fault injector; i+1 = domain i), tid = subsystem lane
// (Lane enum). Timestamps are *simulated* microseconds — never wall clock —
// so a trace is a pure function of the scenario.
//
// Determinism under engine.threads>1: the recorder implements
// sim::EngineObserver. Events emitted while a parallel batch item runs on a
// worker thread go to that item's private staging buffer and are appended to
// the main buffer at the merge barrier in batch *pop* order — the exact
// order the same callbacks execute in at threads=1 — so the recorded trace
// is byte-identical across thread counts. The one exception is the engine's
// own dispatch/batch events (batches don't exist at threads=1), which are
// off by default and opt-in via obs.trace_engine; they are documented as
// outside the thread-count-invariance contract, like EngineStats.
//
// A disabled recorder is never constructed (see scenario/obs_factory): the
// obs-off path has no recorder object at all, keeping runs bit-identical.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine_observer.hpp"

namespace heteroplace::obs {

enum class TraceMode { kOff, kRing, kStream };

/// Parse "off" | "ring" | "stream"; throws std::invalid_argument otherwise.
[[nodiscard]] TraceMode trace_mode_from_string(const std::string& s);

/// Subsystem lanes; exported as Chrome tid with lane_name() thread names.
enum class Lane : std::uint8_t {
  kEngine = 0,
  kController,
  kExecutor,
  kRouter,
  kMigration,
  kPower,
  kFaults,
  kWorkload,
  kCount
};
[[nodiscard]] const char* lane_name(Lane lane);

/// One numeric event argument. Keys must be string literals (the recorder
/// stores the pointer, not a copy).
struct TraceArg {
  const char* key;
  double value;
};

/// One trace event. `name` must be a string literal. Fixed-size and
/// trivially copyable so the ring buffer is a flat allocation.
struct TraceEvent {
  double ts_s{0.0};       // sim time, seconds (exported as microseconds)
  std::uint64_t id{0};    // async-span id ('b'/'e' only)
  const char* name{""};
  std::uint32_t pid{0};
  std::uint8_t tid{0};    // Lane
  char phase{'i'};        // 'B','E','i','b','e'
  std::uint8_t n_args{0};
  TraceArg args[3]{};

  [[nodiscard]] bool operator==(const TraceEvent& o) const;
};

class TraceRecorder final : public sim::EngineObserver {
 public:
  struct Options {
    TraceMode mode{TraceMode::kOff};
    std::size_t ring_capacity{1u << 18};
    std::string path;          // kStream: required; kRing: optional end-of-run dump
    bool engine_lane{false};   // emit engine dispatch/batch events (thread-count-dependent)
  };

  explicit TraceRecorder(const Options& opts);
  ~TraceRecorder() override;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] bool enabled() const { return opts_.mode != TraceMode::kOff; }

  /// Chrome process_name metadata for a pid (call before finish()).
  void set_process_name(std::uint32_t pid, std::string name);

  // --- emission (safe from worker threads during a batch item) -------------
  void instant(std::uint32_t pid, Lane lane, const char* name, double t_s,
               std::initializer_list<TraceArg> args = {});
  void begin(std::uint32_t pid, Lane lane, const char* name, double t_s,
             std::initializer_list<TraceArg> args = {});
  void end(std::uint32_t pid, Lane lane, const char* name, double t_s,
           std::initializer_list<TraceArg> args = {});
  /// Async spans ('b'/'e'), matched by id; used for multi-event state
  /// machines like one migration's suspend→checkpoint→transfer→resume arc.
  void async_begin(std::uint32_t pid, Lane lane, const char* name, std::uint64_t id, double t_s,
                   std::initializer_list<TraceArg> args = {});
  void async_end(std::uint32_t pid, Lane lane, const char* name, std::uint64_t id, double t_s,
                 std::initializer_list<TraceArg> args = {});

  // --- sim::EngineObserver -------------------------------------------------
  void on_serial_event(double time, int priority) override;
  void on_batch_begin(double time, int priority, std::size_t items, std::size_t groups) override;
  void on_batch_item_begin(std::size_t item) override;
  void on_batch_item_end() override;
  void on_batch_end(double time) override;

  // --- inspection / export -------------------------------------------------
  /// Events currently retained (ring) or already written out (stream).
  [[nodiscard]] std::size_t recorded() const;
  /// Ring mode: events evicted by wraparound.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Ring mode: retained events, oldest first. Empty in stream mode.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Write the full Chrome trace-event JSON document (events + metadata) to
  /// `os`. Ring mode only; stream mode writes incrementally to `path`.
  void write_json(std::ostream& os) const;

  /// Finalize output: stream mode flushes buffered events, appends metadata
  /// and closes the JSON document; ring mode with a non-empty `path` dumps
  /// write_json() there. Idempotent; called by the runners at end of run.
  void finish();

 private:
  void emit(std::uint32_t pid, Lane lane, char phase, const char* name, std::uint64_t id,
            double t_s, std::initializer_list<TraceArg> args);
  void append_main(const TraceEvent& ev);  // serial contexts / merge barrier only
  void note_lane(std::uint32_t pid, Lane lane);
  void flush_stream_buffer();
  void write_events_json(std::ostream& os, const TraceEvent* evs, std::size_t n,
                         bool& first) const;
  void write_metadata_json(std::ostream& os, bool& first) const;

  Options opts_;
  // Ring storage (kRing): flat buffer of capacity slots, write cursor wraps.
  std::vector<TraceEvent> ring_;
  std::size_t ring_next_{0};
  std::size_t ring_size_{0};
  std::uint64_t dropped_{0};
  // Stream storage (kStream): buffered events serialized to out_ in chunks.
  std::vector<TraceEvent> stream_buf_;
  std::ofstream out_;
  std::uint64_t streamed_{0};
  bool stream_first_{true};
  bool finished_{false};
  // Parallel-batch staging: one buffer per batch item, merged in pop order.
  std::vector<std::vector<TraceEvent>> staging_;
  bool batch_active_{false};
  // Metadata: process names and the (pid, lane) pairs seen, for thread_name
  // metadata at export. Maintained only from serial contexts.
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::uint32_t, std::uint32_t> lanes_seen_;  // pid -> lane bitmask
};

}  // namespace heteroplace::obs
