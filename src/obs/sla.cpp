#include "obs/sla.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "obs/alerts.hpp"

namespace heteroplace::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int bucket_index(double v) {
  if (!(v > LogHistogram::kMin)) return 0;
  const double raw = std::ceil(std::log(v / LogHistogram::kMin) / std::log(LogHistogram::kGrowth));
  if (raw >= static_cast<double>(LogHistogram::kBuckets - 1)) return LogHistogram::kBuckets - 1;
  return raw < 1.0 ? 1 : static_cast<int>(raw);
}

}  // namespace

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// --- LogHistogram -----------------------------------------------------------

double LogHistogram::bucket_bound(int i) { return kMin * std::pow(kGrowth, i); }

void LogHistogram::observe(double v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))] += 1;
  ++count_;
  sum_ += v;
}

void LogHistogram::merge(const LogHistogram& o) {
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<std::size_t>(i)] += o.buckets_[static_cast<std::size_t>(i)];
  count_ += o.count_;
  sum_ += o.sum_;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double scaled = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[static_cast<std::size_t>(i)];
    if (cum >= rank) return bucket_bound(i);
  }
  return bucket_bound(kBuckets - 1);
}

// --- SlaLedger --------------------------------------------------------------

double SlaLedger::waking_integral(double now) const {
  return waking_integral_ + (waking_open_ > 0 ? now - waking_since_ : 0.0);
}

void SlaLedger::on_admit(util::JobId id, double now) {
  wake_at_admit_[id.get()] = waking_integral(now);
}

void SlaLedger::on_job_started(util::JobId id, double now) {
  const auto it = wake_at_admit_.find(id.get());
  if (it == wake_at_admit_.end()) return;  // restarted stint or foreign-born job
  wake_overlap_[id.get()] = waking_integral(now) - it->second;
  wake_at_admit_.erase(it);
}

void SlaLedger::on_wake_begin(double now) {
  if (waking_open_ == 0) waking_since_ = now;
  ++waking_open_;
}

void SlaLedger::on_wake_end(double now) {
  if (waking_open_ <= 0) return;  // defensive: unmatched end
  if (--waking_open_ == 0) waking_integral_ += now - waking_since_;
}

void SlaLedger::on_job_completed(const workload::Job& job, double now) {
  using JP = workload::JobPhase;
  const workload::JobSpec& spec = job.spec();
  JobSlaRecord r;
  r.id = job.id().get();
  r.submit_s = spec.submit_time.get();
  r.completion_s = now;
  r.goal_s = spec.completion_goal.get();
  r.ratio = r.goal_s > 0.0 ? (now - r.submit_s) / r.goal_s : 0.0;
  r.suspends = job.suspend_count();
  r.migrates = job.migrate_count();

  const double pending = job.phase_seconds(JP::kPending);
  double wake = 0.0;
  if (const auto it = wake_overlap_.find(r.id); it != wake_overlap_.end()) {
    wake = it->second;
    wake_overlap_.erase(it);
  }
  wake_at_admit_.erase(r.id);
  if (wake > pending) wake = pending;
  if (wake < 0.0) wake = 0.0;
  r.wake_excluded_s = wake;
  r.queue_wait_s = pending - wake;
  r.startup_s = job.phase_seconds(JP::kStarting);

  const double running = job.phase_seconds(JP::kRunning);
  const double max_speed = spec.max_speed.get();
  r.run_full_s = max_speed > 0.0 ? job.done().get() / max_speed : 0.0;
  double redo = max_speed > 0.0 ? (job.gross().get() - job.done().get()) / max_speed : 0.0;
  if (redo < 0.0) redo = 0.0;
  if (redo > running - r.run_full_s) redo = running - r.run_full_s;  // FP guard
  r.redo_s = redo;
  r.contention_s = running - r.run_full_s - r.redo_s;

  r.suspend_s = job.phase_seconds(JP::kSuspending) + job.phase_seconds(JP::kSuspended);
  r.resume_s = job.phase_seconds(JP::kResuming);
  r.migration_s = job.phase_seconds(JP::kMigrating) + job.hold_seconds() +
                  job.phase_seconds(JP::kCompleted);

  const double wall = r.wall_s();
  const double diff = std::abs(r.components_sum() - wall);
  if (diff > 1e-9 * std::max(1.0, std::abs(wall))) {
    throw std::logic_error("SlaLedger: attribution does not close for job " +
                           std::to_string(r.id) + ": components sum " +
                           std::to_string(r.components_sum()) + " vs wall " +
                           std::to_string(wall));
  }

  if (r.ratio > 1.0) ++jobs_missed_;
  ratio_hist_.observe(r.ratio);
  const std::string klass = spec.constraint.arch.empty() ? "any" : spec.constraint.arch;
  ratio_by_class_[klass].observe(r.ratio);
  jobs_.push_back(r);
}

void SlaLedger::on_tx_sample(const std::string& app, double now, double rt_s, double goal_s) {
  (void)now;
  TxAppStats& s = tx_[app];
  s.goal_s = goal_s;
  s.rt.observe(rt_s);
  ++s.samples;
  if (rt_s > goal_s) ++s.breaches;
}

SlaLedger::SloCounts SlaLedger::slo_counts(const std::string& app) const {
  if (app == "jobs") return {jobs_.size(), jobs_missed_};
  if (const auto it = tx_.find(app); it != tx_.end()) {
    return {it->second.samples, it->second.breaches};
  }
  return {};
}

// --- report rendering -------------------------------------------------------

namespace {

struct ComponentTotals {
  double queue_wait{0}, wake_excluded{0}, startup{0}, run_full{0}, contention{0}, redo{0},
      suspend{0}, resume{0}, migration{0};

  void add(const JobSlaRecord& r) {
    queue_wait += r.queue_wait_s;
    wake_excluded += r.wake_excluded_s;
    startup += r.startup_s;
    run_full += r.run_full_s;
    contention += r.contention_s;
    redo += r.redo_s;
    suspend += r.suspend_s;
    resume += r.resume_s;
    migration += r.migration_s;
  }
};

void emit_components(std::ostream& os, const ComponentTotals& c) {
  os << "{\"queue_wait_s\":" << format_double(c.queue_wait)
     << ",\"wake_excluded_s\":" << format_double(c.wake_excluded)
     << ",\"startup_s\":" << format_double(c.startup)
     << ",\"run_full_s\":" << format_double(c.run_full)
     << ",\"contention_s\":" << format_double(c.contention)
     << ",\"redo_s\":" << format_double(c.redo) << ",\"suspend_s\":" << format_double(c.suspend)
     << ",\"resume_s\":" << format_double(c.resume)
     << ",\"migration_s\":" << format_double(c.migration) << "}";
}

void emit_quantiles(std::ostream& os, const LogHistogram& h) {
  os << "{\"count\":" << h.count() << ",\"p50\":" << format_double(h.quantile(0.50))
     << ",\"p95\":" << format_double(h.quantile(0.95))
     << ",\"p99\":" << format_double(h.quantile(0.99)) << "}";
}

}  // namespace

std::string render_sla_report_json(const std::vector<const SlaLedger*>& ledgers,
                                   const AlertEngine* alerts) {
  std::ostringstream os;
  os << "{\"schema\":\"heteroplace-sla-report/v1\"";

  // Merged view: fold ledgers in the (fixed) argument order.
  LogHistogram merged_ratio;
  std::map<std::string, LogHistogram> merged_by_class;
  std::map<std::string, SlaLedger::TxAppStats> merged_tx;
  ComponentTotals merged_components;
  std::uint64_t merged_jobs = 0, merged_missed = 0;
  for (const SlaLedger* l : ledgers) {
    merged_ratio.merge(l->ratio_hist());
    for (const auto& [k, h] : l->ratio_by_class()) merged_by_class[k].merge(h);
    for (const auto& [k, s] : l->tx_apps()) {
      SlaLedger::TxAppStats& m = merged_tx[k];
      m.rt.merge(s.rt);
      m.samples += s.samples;
      m.breaches += s.breaches;
      m.goal_s = s.goal_s;
    }
    for (const JobSlaRecord& r : l->jobs()) {
      merged_components.add(r);
      ++merged_jobs;
      if (r.ratio > 1.0) ++merged_missed;
    }
  }

  os << ",\"merged\":{\"jobs_completed\":" << merged_jobs << ",\"jobs_missed\":" << merged_missed
     << ",\"components\":";
  emit_components(os, merged_components);
  os << ",\"ratio_quantiles\":";
  emit_quantiles(os, merged_ratio);
  os << ",\"ratio_by_class\":[";
  {
    bool first = true;
    for (const auto& [k, h] : merged_by_class) {
      if (!first) os << ",";
      first = false;
      os << "{\"class\":\"" << json_escape(k) << "\",\"quantiles\":";
      emit_quantiles(os, h);
      os << "}";
    }
  }
  os << "],\"tx_apps\":[";
  {
    bool first = true;
    for (const auto& [k, s] : merged_tx) {
      if (!first) os << ",";
      first = false;
      os << "{\"app\":\"" << json_escape(k) << "\",\"samples\":" << s.samples
         << ",\"breaches\":" << s.breaches << ",\"goal_s\":" << format_double(s.goal_s)
         << ",\"rt_quantiles\":";
      emit_quantiles(os, s.rt);
      os << "}";
    }
  }
  os << "]}";

  os << ",\"domains\":[";
  for (std::size_t i = 0; i < ledgers.size(); ++i) {
    const SlaLedger* l = ledgers[i];
    if (i != 0) os << ",";
    ComponentTotals c;
    std::uint64_t missed = 0;
    for (const JobSlaRecord& r : l->jobs()) {
      c.add(r);
      if (r.ratio > 1.0) ++missed;
    }
    os << "{\"domain\":\"" << json_escape(l->domain())
       << "\",\"jobs_completed\":" << l->jobs().size() << ",\"jobs_missed\":" << missed
       << ",\"components\":";
    emit_components(os, c);
    os << ",\"ratio_quantiles\":";
    emit_quantiles(os, l->ratio_hist());
    os << ",\"tx_apps\":[";
    bool first = true;
    for (const auto& [k, s] : l->tx_apps()) {
      if (!first) os << ",";
      first = false;
      os << "{\"app\":\"" << json_escape(k) << "\",\"samples\":" << s.samples
         << ",\"breaches\":" << s.breaches << ",\"goal_s\":" << format_double(s.goal_s)
         << ",\"rt_quantiles\":";
      emit_quantiles(os, s.rt);
      os << "}";
    }
    os << "]}";
  }
  os << "]";

  os << ",\"jobs\":[";
  {
    bool first = true;
    for (const SlaLedger* l : ledgers) {
      for (const JobSlaRecord& r : l->jobs()) {
        if (!first) os << ",";
        first = false;
        os << "{\"id\":" << r.id << ",\"domain\":\"" << json_escape(l->domain())
           << "\",\"submit_s\":" << format_double(r.submit_s)
           << ",\"completion_s\":" << format_double(r.completion_s)
           << ",\"goal_s\":" << format_double(r.goal_s) << ",\"ratio\":" << format_double(r.ratio)
           << ",\"queue_wait_s\":" << format_double(r.queue_wait_s)
           << ",\"wake_excluded_s\":" << format_double(r.wake_excluded_s)
           << ",\"startup_s\":" << format_double(r.startup_s)
           << ",\"run_full_s\":" << format_double(r.run_full_s)
           << ",\"contention_s\":" << format_double(r.contention_s)
           << ",\"redo_s\":" << format_double(r.redo_s)
           << ",\"suspend_s\":" << format_double(r.suspend_s)
           << ",\"resume_s\":" << format_double(r.resume_s)
           << ",\"migration_s\":" << format_double(r.migration_s)
           << ",\"suspends\":" << r.suspends << ",\"migrates\":" << r.migrates << "}";
      }
    }
  }
  os << "]";

  os << ",\"alerts\":";
  if (alerts == nullptr) {
    os << "null";
  } else {
    os << "{\"active\":" << alerts->active() << ",\"slos\":[";
    bool first = true;
    for (const SloSpec& s : alerts->slos()) {
      if (!first) os << ",";
      first = false;
      os << "{\"app\":\"" << json_escape(s.app) << "\",\"target\":" << format_double(s.target)
         << ",\"long_window_s\":" << format_double(s.long_window_s)
         << ",\"short_window_s\":" << format_double(s.short_window_s)
         << ",\"burn_threshold\":" << format_double(s.burn_threshold) << "}";
    }
    os << "],\"events\":[";
    first = true;
    for (const AlertEngine::AlertEvent& e : alerts->history()) {
      if (!first) os << ",";
      first = false;
      os << "{\"app\":\"" << json_escape(e.app) << "\",\"opened_s\":" << format_double(e.opened_s)
         << ",\"closed_s\":";
      if (e.closed_s < 0.0) {
        os << "null";
      } else {
        os << format_double(e.closed_s);
      }
      os << "}";
    }
    os << "]}";
  }

  os << "}";
  return os.str();
}

std::string render_sla_report_csv(const std::vector<const SlaLedger*>& ledgers,
                                  const AlertEngine* alerts) {
  std::ostringstream os;
  os << "kind,name,count,p50,p95,p99,extra\n";
  LogHistogram merged_ratio;
  std::map<std::string, SlaLedger::TxAppStats> merged_tx;
  ComponentTotals c;
  std::uint64_t missed = 0;
  for (const SlaLedger* l : ledgers) {
    merged_ratio.merge(l->ratio_hist());
    for (const auto& [k, s] : l->tx_apps()) {
      SlaLedger::TxAppStats& m = merged_tx[k];
      m.rt.merge(s.rt);
      m.samples += s.samples;
      m.breaches += s.breaches;
      m.goal_s = s.goal_s;
    }
    for (const JobSlaRecord& r : l->jobs()) {
      c.add(r);
      if (r.ratio > 1.0) ++missed;
    }
  }
  os << "ratio,jobs," << merged_ratio.count() << "," << format_double(merged_ratio.quantile(0.5))
     << "," << format_double(merged_ratio.quantile(0.95)) << ","
     << format_double(merged_ratio.quantile(0.99)) << ",missed=" << missed << "\n";
  for (const auto& [k, s] : merged_tx) {
    os << "tx_rt," << k << "," << s.samples << "," << format_double(s.rt.quantile(0.5)) << ","
       << format_double(s.rt.quantile(0.95)) << "," << format_double(s.rt.quantile(0.99))
       << ",breaches=" << s.breaches << "\n";
  }
  const auto component = [&os](const char* name, double total) {
    os << "component," << name << ",,,,," << format_double(total) << "\n";
  };
  component("queue_wait_s", c.queue_wait);
  component("wake_excluded_s", c.wake_excluded);
  component("startup_s", c.startup);
  component("run_full_s", c.run_full);
  component("contention_s", c.contention);
  component("redo_s", c.redo);
  component("suspend_s", c.suspend);
  component("resume_s", c.resume);
  component("migration_s", c.migration);
  if (alerts != nullptr) {
    for (const AlertEngine::AlertEvent& e : alerts->history()) {
      os << "alert," << e.app << ",,,,,opened=" << format_double(e.opened_s) << " closed=";
      if (e.closed_s < 0.0) {
        os << "open";
      } else {
        os << format_double(e.closed_s);
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace heteroplace::obs
