#include "obs/profile.hpp"

#include <cstdio>
#include <sstream>

namespace heteroplace::obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kControllerCycle:
      return "controller/cycle";
    case Phase::kPolicyEqualize:
      return "policy/equalize";
    case Phase::kPolicyBuildProblem:
      return "policy/build_problem";
    case Phase::kPolicySolve:
      return "policy/solve";
    case Phase::kExecutorApply:
      return "executor/apply";
    case Phase::kMigrationTick:
      return "migration/tick";
    case Phase::kPowerTick:
      return "power/tick";
    case Phase::kFaultEvent:
      return "faults/event";
    case Phase::kSampling:
      return "sampling";
    case Phase::kCount:
      break;
  }
  return "?";
}

ProfileReport Profiler::report() const {
  ProfileReport out;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const std::uint64_t calls = calls_[i].load(std::memory_order_relaxed);
    if (calls == 0) continue;
    out.push_back({phase_name(static_cast<Phase>(i)), calls,
                   ns_[i].load(std::memory_order_relaxed)});
  }
  return out;
}

std::string format_profile_report(const ProfileReport& report) {
  std::ostringstream os;
  os << "phase                        calls     total_ms   ns/call\n";
  for (const ProfileEntry& e : report) {
    char line[128];
    const double per_call = e.calls > 0 ? static_cast<double>(e.total_ns) / e.calls : 0.0;
    std::snprintf(line, sizeof(line), "%-26s %9llu %12.3f %9.0f\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.calls), e.total_ns / 1e6, per_call);
    os << line;
  }
  return os.str();
}

}  // namespace heteroplace::obs
