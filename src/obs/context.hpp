#pragma once

// The handle subsystems hold on the observability layer. A default
// ObsContext (all null) is the obs-off state: every emission site guards on
// the pointer, so disabled observability is branch-per-site cheap and the
// obs-off output stays bit-identical.

#include <cstdint>
#include <string>

namespace heteroplace::obs {

class TraceRecorder;
class MetricsRegistry;
class Profiler;
class Counter;
class Gauge;
class Histogram;
class SlaLedger;
class AuditLog;

struct ObsContext {
  TraceRecorder* trace{nullptr};
  MetricsRegistry* metrics{nullptr};
  Profiler* profiler{nullptr};
  /// Per-domain SLA attribution ledger (obs/sla.hpp); wired only for
  /// domain contexts (pid >= 1) so parallel batch items never share one.
  SlaLedger* sla{nullptr};
  /// Per-domain placement decision audit ring (obs/audit.hpp); same
  /// pid >= 1 wiring rule as the ledger.
  AuditLog* audit{nullptr};
  /// Chrome trace pid for this subsystem's events: 0 = the global/serial
  /// spine (router, migration manager, fault injector), i+1 = domain i.
  std::uint32_t pid{0};
  /// Pre-rendered Prometheus label text for this domain's instruments,
  /// e.g. `domain="dc0"`; empty for global instruments.
  std::string labels;

  [[nodiscard]] bool any() const {
    return trace != nullptr || metrics != nullptr || profiler != nullptr || sla != nullptr ||
           audit != nullptr;
  }
};

}  // namespace heteroplace::obs
