#pragma once

// Deterministic SLO burn-rate alerting over the SLA ledger.
//
// An SloSpec promises that a fraction `target` of events are good —
// tx-app response-time samples under the app's goal, or batch jobs
// completing within their SLA goal (app == "jobs"). The engine evaluates
// the classic multiwindow burn-rate rule on *sim-time* windows: with
// error budget (1 - target) and windowed error rate err(W),
//
//   burn(W) = err(W) / (1 - target)
//
// an alert opens when burn(long) and burn(short) both reach
// `burn_threshold` (the short window gates on current badness so alerts
// close promptly after recovery) and closes when either drops below it.
//
// Determinism: evaluate() is called only from the serial sampling spine
// with ledgers in fixed domain order, and all state is integer event
// counts — alert instants are byte-identical across engine thread counts.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/sla.hpp"

namespace heteroplace::obs {

class TraceRecorder;
class MetricsRegistry;
class Counter;
class Gauge;

/// One SLO: `app` is a tx-app name or "jobs" (batch-job completions).
struct SloSpec {
  std::string app;
  double target{0.99};          // promised good fraction, in (0, 1)
  double long_window_s{3600};   // sustained-burn window
  double short_window_s{300};   // still-burning gate (<= long window)
  double burn_threshold{1.0};   // open when both window burns reach this
};

class AlertEngine {
 public:
  /// Register an SLO. Call all add_slo()s, then bind(), before the run.
  void add_slo(SloSpec spec);

  /// Wire trace/metrics emission (either may be null). Registers the
  /// alerts_total / alerts_active instruments; must be called from a
  /// serial context before the run starts.
  void bind(TraceRecorder* trace, MetricsRegistry* metrics);

  /// Evaluate every SLO at sim time `now` against the cumulative event
  /// counts of `ledgers` (fixed domain order). Serial contexts only.
  void evaluate(double now, const std::vector<const SlaLedger*>& ledgers);

  struct AlertEvent {
    std::string app;
    double opened_s{0.0};
    double closed_s{-1.0};  // -1 = still open at end of run
  };

  [[nodiscard]] const std::vector<AlertEvent>& history() const { return history_; }
  [[nodiscard]] int active() const { return active_; }
  [[nodiscard]] std::vector<SloSpec> slos() const;

 private:
  struct Snapshot {
    double t{0.0};
    std::uint64_t total{0};
    std::uint64_t bad{0};
  };
  struct SloState {
    SloSpec spec;
    // Stable strings backing the trace-event name pointers.
    std::string open_name;
    std::string close_name;
    std::deque<Snapshot> window;
    Counter* opens_metric{nullptr};
    bool open{false};
    std::size_t open_index{0};  // history_ slot of the open alert
  };

  [[nodiscard]] static double window_burn(const SloState& s, double now, double window_s);

  // deque: SloState addresses (and thus open_name.c_str()) stay stable.
  std::deque<SloState> slos_;
  std::vector<AlertEvent> history_;
  TraceRecorder* trace_{nullptr};
  Gauge* active_metric_{nullptr};
  int active_{0};
};

}  // namespace heteroplace::obs
