#include "obs/trace_check.hpp"

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace heteroplace::obs {

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': {
        v.type = JsonValue::Type::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          skip_ws();
          if (peek() != '"') fail("object keys must be strings");
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = JsonValue::Type::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = JsonValue::Type::kString;
        v.string = parse_string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type = JsonValue::Type::kNull;
        return v;
      default: {
        if (c != '-' && (c < '0' || c > '9')) fail("unexpected character");
        const char* start = text_.c_str() + pos_;
        char* endp = nullptr;
        v.type = JsonValue::Type::kNumber;
        v.number = std::strtod(start, &endp);
        if (endp == start) fail("bad number");
        pos_ += static_cast<std::size_t>(endp - start);
        return v;
      }
    }
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // ASCII only in practice; encode anything else as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  const std::string& text_;
  std::size_t pos_{0};
};

bool is_number(const JsonValue* v) { return v != nullptr && v->type == JsonValue::Type::kNumber; }
bool is_string(const JsonValue* v) { return v != nullptr && v->type == JsonValue::Type::kString; }

constexpr std::size_t kMaxProblems = 20;

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse_document(); }

std::vector<std::string> validate_chrome_trace(const std::string& json_text) {
  std::vector<std::string> problems;
  auto report = [&problems](const std::string& p) {
    if (problems.size() < kMaxProblems) problems.push_back(p);
  };

  JsonValue doc;
  try {
    doc = parse_json(json_text);
  } catch (const std::exception& e) {
    return {std::string("not well-formed JSON: ") + e.what()};
  }

  const JsonValue* events = nullptr;
  if (doc.type == JsonValue::Type::kArray) {
    events = &doc;
  } else if (doc.type == JsonValue::Type::kObject) {
    events = doc.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
      return {"top-level object has no traceEvents array"};
    }
  } else {
    return {"document is neither an object nor an event array"};
  }

  // Per-(pid, tid) lane state: last timestamp and the open B-span stack.
  struct LaneState {
    double last_ts{-1.0};
    std::vector<std::string> span_stack;
  };
  std::map<std::pair<double, double>, LaneState> lanes;
  // Open async spans keyed by (cat, id).
  std::map<std::pair<std::string, double>, int> async_open;

  const std::string known_phases = "BEibeMXsntfC";
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string where = "event " + std::to_string(i);
    if (ev.type != JsonValue::Type::kObject) {
      report(where + ": not an object");
      continue;
    }
    const JsonValue* name = ev.find("name");
    const JsonValue* ph = ev.find("ph");
    const JsonValue* ts = ev.find("ts");
    const JsonValue* pid = ev.find("pid");
    const JsonValue* tid = ev.find("tid");
    if (!is_string(name)) report(where + ": missing string 'name'");
    if (!is_string(ph) || ph->string.size() != 1 ||
        known_phases.find(ph->string[0]) == std::string::npos) {
      report(where + ": missing or unknown 'ph'");
      continue;
    }
    if (!is_number(ts)) report(where + ": missing numeric 'ts'");
    if (!is_number(pid)) report(where + ": missing numeric 'pid'");
    if (!is_number(tid)) report(where + ": missing numeric 'tid'");
    if (!is_string(name) || !is_number(ts) || !is_number(pid) || !is_number(tid)) continue;

    const char phase = ph->string[0];
    if (phase == 'M') continue;  // metadata: no ordering constraints

    LaneState& lane = lanes[{pid->number, tid->number}];
    if (ts->number < lane.last_ts) {
      report(where + " ('" + name->string + "'): ts " + std::to_string(ts->number) +
             " goes backwards on pid=" + std::to_string(pid->number) +
             " tid=" + std::to_string(tid->number));
    }
    lane.last_ts = ts->number;

    if (phase == 'B') {
      lane.span_stack.push_back(name->string);
    } else if (phase == 'E') {
      if (lane.span_stack.empty()) {
        report(where + ": 'E' for '" + name->string + "' with no open span");
      } else {
        if (lane.span_stack.back() != name->string) {
          report(where + ": 'E' for '" + name->string + "' but open span is '" +
                 lane.span_stack.back() + "'");
        }
        lane.span_stack.pop_back();
      }
    } else if (phase == 'b' || phase == 'e') {
      const JsonValue* cat = ev.find("cat");
      const JsonValue* id = ev.find("id");
      if (!is_string(cat) || !is_number(id)) {
        report(where + ": async event missing 'cat'/'id'");
        continue;
      }
      int& open = async_open[{cat->string, id->number}];
      if (phase == 'b') {
        if (open > 0) {
          report(where + ": overlapping async begin for " + cat->string + "/" +
                 std::to_string(static_cast<std::uint64_t>(id->number)) +
                 " (previous arc never ended)");
        }
        ++open;
      } else if (open <= 0) {
        report(where + ": async end for " + cat->string + "/" +
               std::to_string(static_cast<std::uint64_t>(id->number)) + " with no open begin");
      } else {
        --open;
      }
    } else if (phase == 'C') {
      // Counter events are meaningless without at least one numeric series
      // value; Perfetto silently drops malformed ones, so catch them here.
      const JsonValue* args = ev.find("args");
      if (args == nullptr || args->type != JsonValue::Type::kObject || args->object.empty()) {
        report(where + ": counter '" + name->string + "' has no args object");
      } else {
        for (const auto& [k, v] : args->object) {
          if (v.type != JsonValue::Type::kNumber) {
            report(where + ": counter '" + name->string + "' arg '" + k + "' is not numeric");
          }
        }
      }
    } else if (phase == 'i') {
      const JsonValue* scope = ev.find("s");
      if (scope != nullptr &&
          (scope->type != JsonValue::Type::kString ||
           (scope->string != "t" && scope->string != "p" && scope->string != "g"))) {
        report(where + ": instant scope 's' must be one of t/p/g");
      }
    }
  }

  // B/E spans always open and close inside one callback at one sim time, so
  // an unclosed one is a real emission bug. Async spans ('b'/'e') may
  // legitimately still be open when the horizon ends (e.g. a migration in
  // flight), so only unmatched ends are reported above.
  for (const auto& [key, lane] : lanes) {
    for (const std::string& open : lane.span_stack) {
      report("unclosed span '" + open + "' on pid=" + std::to_string(key.first) +
             " tid=" + std::to_string(key.second));
    }
  }
  return problems;
}

std::vector<std::string> validate_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {"cannot open '" + path + "'"};
  std::ostringstream buf;
  buf << in.rdbuf();
  return validate_chrome_trace(buf.str());
}

}  // namespace heteroplace::obs
