#pragma once

// Wall-clock profiling hooks: per-subsystem-phase timers answering the
// ROADMAP's serial-spine Amdahl question (where does macro-scale wall time
// go — controller solve? migration manager? the merge barrier?).
//
// Wall-clock durations are machine-dependent, so like sim::EngineTiming and
// the EngineStats block they are kept strictly out of result_digest: the
// ProfileReport rides on ExperimentResult/FederatedResult as diagnostics
// only, and a null Profiler* makes every hook a no-op so unprofiled runs
// pay nothing.
//
// All counters are relaxed atomics: ScopedTimer runs inside parallel batch
// items on worker threads (e.g. per-domain controller cycles).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace heteroplace::obs {

enum class Phase : int {
  kControllerCycle = 0,  // whole control cycle (includes the phases below)
  kPolicyEqualize,       // phase 2: utility equalization
  kPolicyBuildProblem,   // phase 3: placement-problem construction
  kPolicySolve,          // phase 4: placement solver
  kExecutorApply,        // action-plan application
  kMigrationTick,        // migration-manager tick
  kPowerTick,            // power-manager tick
  kFaultEvent,           // fault injection / recovery events
  kSampling,             // metrics sampling callbacks
  kCount
};
[[nodiscard]] const char* phase_name(Phase p);

struct ProfileEntry {
  std::string name;
  std::uint64_t calls{0};
  std::uint64_t total_ns{0};
};

/// Flat per-run profile: phases in a fixed order, engine rows appended by
/// the runners from sim::EngineTiming. Diagnostics only — digest-excluded.
using ProfileReport = std::vector<ProfileEntry>;

class Profiler {
 public:
  void add(Phase p, std::uint64_t ns, std::uint64_t calls = 1) {
    const auto i = static_cast<std::size_t>(p);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    calls_[i].fetch_add(calls, std::memory_order_relaxed);
  }

  /// Phases with at least one call, in enum order.
  [[nodiscard]] ProfileReport report() const;

 private:
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Phase::kCount)> ns_{};
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Phase::kCount)> calls_{};
};

/// RAII phase timer; a null profiler makes construction and destruction
/// each a single branch.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* profiler, Phase phase) : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (profiler_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    profiler_->add(phase_, static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* profiler_;
  Phase phase_;
  std::chrono::steady_clock::time_point t0_;
};

/// Render a report as an aligned text table (perf_macro, examples).
[[nodiscard]] std::string format_profile_report(const ProfileReport& report);

}  // namespace heteroplace::obs
