#pragma once

// Self-checking for emitted trace files: a dependency-free JSON parser plus
// Chrome trace-event schema validation (required fields, known phases,
// monotone timestamps per (pid, tid), balanced B/E span nesting, matched
// non-overlapping async begin/end arcs per (cat, id), and counter ('C')
// events carrying at least one numeric args series). Used by obs_test and
// by the trace_check CLI tool that CI runs against the examples-smoke
// trace artifact. The JSON model here is shared with tools/sla_report.

#include <string>
#include <utility>
#include <vector>

namespace heteroplace::obs {

/// Minimal JSON document model (enough for trace and metrics snapshots).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type{Type::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Strict parse of a complete JSON document; throws std::invalid_argument
/// (with offset) on syntax errors or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Validate a Chrome trace-event document (the object form emitted by
/// TraceRecorder, or a bare event array). Returns human-readable problems;
/// empty means the trace is well-formed.
[[nodiscard]] std::vector<std::string> validate_chrome_trace(const std::string& json_text);

/// Convenience: read `path` and validate. I/O failures are reported as a
/// single problem entry.
[[nodiscard]] std::vector<std::string> validate_chrome_trace_file(const std::string& path);

}  // namespace heteroplace::obs
