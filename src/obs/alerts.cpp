#include "obs/alerts.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heteroplace::obs {

void AlertEngine::add_slo(SloSpec spec) {
  if (spec.app.empty()) throw std::invalid_argument("SloSpec: app must be non-empty");
  if (!(spec.target > 0.0) || !(spec.target < 1.0)) {
    throw std::invalid_argument("SloSpec: target must be in (0, 1)");
  }
  if (!(spec.short_window_s > 0.0) || spec.short_window_s > spec.long_window_s) {
    throw std::invalid_argument("SloSpec: need 0 < short_window_s <= long_window_s");
  }
  if (!(spec.burn_threshold > 0.0)) {
    throw std::invalid_argument("SloSpec: burn_threshold must be positive");
  }
  SloState st;
  st.open_name = "slo_alert_open:" + spec.app;
  st.close_name = "slo_alert_close:" + spec.app;
  st.spec = std::move(spec);
  slos_.push_back(std::move(st));
}

void AlertEngine::bind(TraceRecorder* trace, MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics == nullptr) return;
  active_metric_ = &metrics->gauge("alerts_active", "SLO burn-rate alerts currently open");
  for (SloState& s : slos_) {
    s.opens_metric = &metrics->counter("alerts_total", "SLO burn-rate alerts opened",
                                       prometheus_label("app", s.spec.app));
  }
}

double AlertEngine::window_burn(const SloState& s, double now, double window_s) {
  // Baseline: the latest snapshot at or before the window start; counts
  // before the first snapshot are zero.
  Snapshot base;
  const double start = now - window_s;
  for (const Snapshot& snap : s.window) {
    if (snap.t > start) break;
    base = snap;
  }
  const Snapshot& latest = s.window.back();
  const std::uint64_t total = latest.total - base.total;
  if (total == 0) return 0.0;
  const double err = static_cast<double>(latest.bad - base.bad) / static_cast<double>(total);
  return err / (1.0 - s.spec.target);
}

void AlertEngine::evaluate(double now, const std::vector<const SlaLedger*>& ledgers) {
  for (SloState& s : slos_) {
    Snapshot snap;
    snap.t = now;
    for (const SlaLedger* l : ledgers) {
      const SlaLedger::SloCounts c = l->slo_counts(s.spec.app);
      snap.total += c.total;
      snap.bad += c.bad;
    }
    s.window.push_back(snap);
    // Prune snapshots that can no longer be a long-window baseline (keep
    // one at or before every possible window start).
    while (s.window.size() >= 2 && s.window[1].t <= now - s.spec.long_window_s) {
      s.window.pop_front();
    }

    const double burn_long = window_burn(s, now, s.spec.long_window_s);
    const double burn_short = window_burn(s, now, s.spec.short_window_s);
    const bool burning =
        burn_long >= s.spec.burn_threshold && burn_short >= s.spec.burn_threshold;

    if (burning && !s.open) {
      s.open = true;
      s.open_index = history_.size();
      history_.push_back({s.spec.app, now, -1.0});
      ++active_;
      if (s.opens_metric != nullptr) s.opens_metric->inc();
      if (trace_ != nullptr) {
        trace_->instant(0, Lane::kController, s.open_name.c_str(), now,
                        {{"burn_long", burn_long}, {"burn_short", burn_short}});
      }
    } else if (!burning && s.open) {
      s.open = false;
      history_[s.open_index].closed_s = now;
      --active_;
      if (trace_ != nullptr) {
        trace_->instant(0, Lane::kController, s.close_name.c_str(), now,
                        {{"burn_long", burn_long}, {"burn_short", burn_short}});
      }
    }
  }
  if (active_metric_ != nullptr) active_metric_->set(static_cast<double>(active_));
}

std::vector<SloSpec> AlertEngine::slos() const {
  std::vector<SloSpec> out;
  out.reserve(slos_.size());
  for (const SloState& s : slos_) out.push_back(s.spec);
  return out;
}

}  // namespace heteroplace::obs
