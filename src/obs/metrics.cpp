#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace heteroplace::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_le(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", bound);
  return buf;
}

std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\\\"";
    else if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  out += '"';
  return out;
}

/// "name" + label text -> name{labels,extra} sample name.
std::string sample_name(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

void Gauge::add(double d) { atomic_add(v_, d); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw std::invalid_argument("histogram bucket bounds must be finite (+Inf is implicit)");
    }
    if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bucket bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name, Type type,
                                                 const std::string& help) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name '" + name + "'");
  }
  const auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  } else if (it->second.type != type) {
    throw std::invalid_argument("metric '" + name + "' already registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const std::string& labels) {
  Family& fam = family(name, Type::kCounter, help);
  auto& slot = fam.counters[labels];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  Family& fam = family(name, Type::kGauge, help);
  auto& slot = fam.gauges[labels];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      std::vector<double> bounds, const std::string& labels) {
  Family& fam = family(name, Type::kHistogram, help);
  auto& slot = fam.histograms[labels];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw std::invalid_argument("histogram '" + name +
                                "' already registered with different bucket bounds");
  }
  return *slot;
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << " " << escape_help(fam.help) << "\n";
    switch (fam.type) {
      case Type::kCounter: {
        os << "# TYPE " << name << " counter\n";
        for (const auto& [labels, c] : fam.counters) {
          os << sample_name(name, labels) << " " << c->value() << "\n";
        }
        break;
      }
      case Type::kGauge: {
        os << "# TYPE " << name << " gauge\n";
        for (const auto& [labels, g] : fam.gauges) {
          os << sample_name(name, labels) << " " << format_double(g->value()) << "\n";
        }
        break;
      }
      case Type::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        for (const auto& [labels, h] : fam.histograms) {
          const std::vector<std::uint64_t> counts = h->bucket_counts();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < h->bounds().size(); ++i) {
            cum += counts[i];
            os << sample_name(name + "_bucket", labels,
                              "le=\"" + format_le(h->bounds()[i]) + "\"")
               << " " << cum << "\n";
          }
          cum += counts.back();
          os << sample_name(name + "_bucket", labels, "le=\"+Inf\"") << " " << cum << "\n";
          os << sample_name(name + "_sum", labels) << " " << format_double(h->sum()) << "\n";
          os << sample_name(name + "_count", labels) << " " << h->count() << "\n";
        }
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  os << "{";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) os << ",";
    first_fam = false;
    os << "\n" << json_string(name) << ":{\"type\":\"";
    os << (fam.type == Type::kCounter ? "counter"
                                      : fam.type == Type::kGauge ? "gauge" : "histogram");
    os << "\",\"help\":" << json_string(fam.help) << ",\"samples\":[";
    bool first_sample = true;
    auto sep = [&] {
      if (!first_sample) os << ",";
      first_sample = false;
    };
    switch (fam.type) {
      case Type::kCounter:
        for (const auto& [labels, c] : fam.counters) {
          sep();
          os << "{\"labels\":" << json_string(labels) << ",\"value\":" << c->value() << "}";
        }
        break;
      case Type::kGauge:
        for (const auto& [labels, g] : fam.gauges) {
          sep();
          os << "{\"labels\":" << json_string(labels) << ",\"value\":";
          const double v = g->value();
          if (std::isfinite(v)) os << format_double(v);
          else os << "null";
          os << "}";
        }
        break;
      case Type::kHistogram:
        for (const auto& [labels, h] : fam.histograms) {
          sep();
          os << "{\"labels\":" << json_string(labels) << ",\"bounds\":[";
          for (std::size_t i = 0; i < h->bounds().size(); ++i) {
            if (i > 0) os << ",";
            os << format_double(h->bounds()[i]);
          }
          // Cumulative counts, matching the Prometheus _bucket samples; the
          // final entry is the +Inf bucket (== count).
          os << "],\"cumulative_counts\":[";
          const std::vector<std::uint64_t> counts = h->bucket_counts();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i > 0) os << ",";
            cum += counts[i];
            os << cum;
          }
          os << "],\"sum\":";
          if (std::isfinite(h->sum())) os << format_double(h->sum());
          else os << "null";
          os << ",\"count\":" << h->count() << "}";
        }
        break;
    }
    os << "]}";
  }
  os << "\n}\n";
  return os.str();
}

std::string prometheus_label(const std::string& key, const std::string& value) {
  std::string out = key + "=\"";
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  out += '"';
  return out;
}

std::map<std::string, double> parse_prometheus_text(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    // Sample line: name[{labels}] value
    std::size_t i = 0;
    auto fail = [&](const std::string& why) {
      throw std::invalid_argument("prometheus text line " + std::to_string(line_no) + ": " + why +
                                  ": " + line);
    };
    while (i < line.size() && line[i] != ' ' && line[i] != '{') ++i;
    if (i == 0) fail("missing sample name");
    std::string name = line.substr(0, i);
    if (!valid_metric_name(name)) fail("invalid sample name");
    if (i < line.size() && line[i] == '{') {
      // Copy label text verbatim through the matching '}', honoring quotes.
      const std::size_t open = i;
      bool in_quote = false;
      for (++i; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quote) {
          if (c == '\\') ++i;  // skip escaped char
          else if (c == '"') in_quote = false;
        } else if (c == '"') {
          in_quote = true;
        } else if (c == '}') {
          break;
        }
      }
      if (i >= line.size()) fail("unterminated label set");
      name += line.substr(open, i - open + 1);
      ++i;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) fail("missing value");
    const char* start = line.c_str() + i;
    char* endp = nullptr;
    const double v = std::strtod(start, &endp);
    if (endp == start) fail("unparsable value");
    out[name] = v;
  }
  return out;
}

}  // namespace heteroplace::obs
