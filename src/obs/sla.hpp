#pragma once

// SLA attribution ledger: decomposes every completed job's wall lifetime
// into attributed components and folds per-app/per-class quality metrics
// into deterministic fixed-log-bucket histograms.
//
// The component decomposition leans on workload::Job's per-phase wall-time
// buckets (advance_to folds every elapsed interval into the bucket of the
// phase it was spent in, and cross-domain transfers carry the buckets plus
// an explicit hold term through migration::JobCheckpoint), so
//
//   queue_wait + wake_excluded + startup + run_full + contention + redo
//     + suspend + resume + migration == completion - submit
//
// holds structurally: the bucket increments telescope over the lifetime and
// the ledger asserts closure (relative 1e-9) for every completion.
// Component meanings:
//   queue_wait    pending time not explained by a power wake in progress
//   wake_excluded pending time while >= 1 node in the domain was waking
//   run_full      done / max_speed — the irreducible full-speed run time
//   contention    running time beyond full speed, i.e. delivered < max MHz
//   redo          (gross - done) / max_speed — work redone after a fault
//                 revert (gross is monotone, done is reverted)
//   suspend       suspending + suspended wall time
//   resume        resuming wall time
//   migration     migrating wall time + cross-domain transfer hold
//
// Thread-safety by construction, not locks: one SlaLedger per domain,
// touched only by that domain's sharded events (executor callbacks, power
// manager) and the serial spine (arrivals, sampling), so parallel batches
// never share a ledger and all output is byte-identical across engine
// thread counts. Quantiles come from integer bucket counts, never samples.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "workload/job.hpp"

namespace heteroplace::obs {

class AlertEngine;

/// Deterministic fixed-log-bucket histogram. Bucket i covers
/// (kMin * kGrowth^(i-1), kMin * kGrowth^i]; bucket 0 additionally absorbs
/// everything <= kMin and the last bucket everything beyond the range.
/// ~10% relative resolution over [1e-6, ~1.6e7] — wide enough for both
/// completion ratios and response times in seconds.
class LogHistogram {
 public:
  static constexpr int kBuckets = 320;
  static constexpr double kMin = 1e-6;
  static constexpr double kGrowth = 1.1;

  void observe(double v);
  void merge(const LogHistogram& o);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Upper bound of the bucket holding the q-quantile sample (by rank
  /// ceil(q * count)); 0 for an empty histogram. Integer-count walk —
  /// byte-identical across runs and thread counts.
  [[nodiscard]] double quantile(double q) const;
  /// Upper bound of bucket i.
  [[nodiscard]] static double bucket_bound(int i);
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_{0};
  double sum_{0.0};
};

/// Attribution record for one completed job.
struct JobSlaRecord {
  std::uint32_t id{0};
  double submit_s{0.0};
  double completion_s{0.0};
  double goal_s{0.0};   // completion goal (relative to submit)
  double ratio{0.0};    // (completion - submit) / goal; > 1 = SLA missed
  double queue_wait_s{0.0};
  double wake_excluded_s{0.0};
  double startup_s{0.0};
  double run_full_s{0.0};
  double contention_s{0.0};
  double redo_s{0.0};
  double suspend_s{0.0};
  double resume_s{0.0};
  double migration_s{0.0};
  int suspends{0};
  int migrates{0};

  /// Sum of the attributed components (== wall lifetime, asserted).
  [[nodiscard]] double components_sum() const {
    return queue_wait_s + wake_excluded_s + startup_s + run_full_s + contention_s + redo_s +
           suspend_s + resume_s + migration_s;
  }
  [[nodiscard]] double wall_s() const { return completion_s - submit_s; }
};

/// Per-domain SLA ledger. See file comment for the threading contract.
class SlaLedger {
 public:
  explicit SlaLedger(std::string domain) : domain_(std::move(domain)) {}

  [[nodiscard]] const std::string& domain() const { return domain_; }

  /// Job admitted to this domain (enters kPending) — serial spine.
  void on_admit(util::JobId id, double now);
  /// Job left kPending via executor start (first stint only matters for
  /// the wake-exclusion overlap; later stints simply find no snapshot).
  void on_job_started(util::JobId id, double now);
  /// Power manager began / finished waking a node in this domain.
  void on_wake_begin(double now);
  void on_wake_end(double now);
  /// Job completed; builds the attribution record from the Job's own
  /// accounting and asserts closure. Throws std::logic_error if the
  /// components do not sum to the wall lifetime within 1e-9 (relative).
  void on_job_completed(const workload::Job& job, double now);
  /// One transactional-app response-time sample (from the metrics
  /// sampler); a sample breaching `goal_s` is an SLO error event.
  void on_tx_sample(const std::string& app, double now, double rt_s, double goal_s);

  struct TxAppStats {
    LogHistogram rt;
    std::uint64_t samples{0};
    std::uint64_t breaches{0};
    double goal_s{0.0};
  };

  /// Cumulative good/bad event counts for an SLO target: `app` is a tx
  /// app name, or "jobs" for batch-job completions (bad = ratio > 1).
  struct SloCounts {
    std::uint64_t total{0};
    std::uint64_t bad{0};
  };
  [[nodiscard]] SloCounts slo_counts(const std::string& app) const;

  [[nodiscard]] const std::vector<JobSlaRecord>& jobs() const { return jobs_; }
  [[nodiscard]] const LogHistogram& ratio_hist() const { return ratio_hist_; }
  /// Completion-ratio histograms keyed by constraint class (job's required
  /// arch; "any" for unconstrained jobs).
  [[nodiscard]] const std::map<std::string, LogHistogram>& ratio_by_class() const {
    return ratio_by_class_;
  }
  [[nodiscard]] const std::map<std::string, TxAppStats>& tx_apps() const { return tx_; }
  /// Total waking-node wall time metered in this domain (diagnostic).
  [[nodiscard]] double waking_integral(double now) const;

 private:
  std::string domain_;
  std::vector<JobSlaRecord> jobs_;
  LogHistogram ratio_hist_;
  std::map<std::string, LogHistogram> ratio_by_class_;
  std::map<std::string, TxAppStats> tx_;
  std::uint64_t jobs_missed_{0};
  // Wake-overlap metering: integral over time of [>=1 node waking].
  double waking_integral_{0.0};
  double waking_since_{0.0};
  int waking_open_{0};
  // Pending jobs: waking-integral value at admission, consumed at start.
  std::map<std::uint32_t, double> wake_at_admit_;
  // Wake overlap banked for jobs that already started.
  std::map<std::uint32_t, double> wake_overlap_;
};

/// Render the merged end-of-run SLA report. Ledgers must be passed in
/// fixed domain order (the merge folds them in argument order, keeping the
/// output byte-identical across engine thread counts). `alerts` may be
/// null when no SLOs are configured.
[[nodiscard]] std::string render_sla_report_json(const std::vector<const SlaLedger*>& ledgers,
                                                 const AlertEngine* alerts);
[[nodiscard]] std::string render_sla_report_csv(const std::vector<const SlaLedger*>& ledgers,
                                                const AlertEngine* alerts);

/// Deterministic shortest-round-trip double formatting shared by the SLA
/// report and audit JSON writers.
[[nodiscard]] std::string format_double(double v);

}  // namespace heteroplace::obs
