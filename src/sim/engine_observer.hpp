#pragma once

// Engine-side observability hook. The engine invokes an attached observer at
// the same points where it binds event-queue staging, so an observer can
// reproduce the deterministic merge discipline for its own per-event data
// (see obs::TraceRecorder): anything captured while a batch item runs on a
// worker is replayed in batch *pop* order at the merge barrier, which is
// exactly the order the same events execute in at engine.threads=1.
//
// No observer attached (the default) means zero calls and zero cost on the
// dispatch path.

#include <cstddef>

namespace heteroplace::sim {

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// One event dispatched on the engine thread (threads=1, an unsharded
  /// event, or a batch that degenerated to a single item). `priority` is the
  /// event's EventPriority value.
  virtual void on_serial_event(double time, int priority) = 0;

  /// A parallel batch of `items` same-(time, priority) events over
  /// `groups` distinct shards is about to run on the worker pool.
  /// Engine thread, before any worker starts.
  virtual void on_batch_begin(double time, int priority, std::size_t items,
                              std::size_t groups) = 0;

  /// Worker thread, immediately before batch item `item` (index in batch
  /// pop order) runs. Paired with on_batch_item_end() on the same thread
  /// even if the callback throws.
  virtual void on_batch_item_begin(std::size_t item) = 0;

  /// Worker thread, after the item's callback returns (or throws).
  virtual void on_batch_item_end() = 0;

  /// Engine thread, after the merge barrier (staged pushes replayed).
  /// Observers merge their per-item buffers here, in item-index order.
  virtual void on_batch_end(double time) = 0;
};

}  // namespace heteroplace::sim
