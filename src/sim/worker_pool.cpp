#include "sim/worker_pool.hpp"

namespace heteroplace::sim {

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::drain() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_items_) return;
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        (*job_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    // A skipped item still counts toward the barrier.
    std::lock_guard<std::mutex> lk(mu_);
    if (++completed_ == n_items_) cv_done_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    // running_ gates a late wake-up: once run() returned, its epoch is
    // closed and a stale drain would race the next run's state reset.
    cv_start_.wait(lk, [&] { return shutdown_ || (epoch_ != seen && running_); });
    if (shutdown_) return;
    seen = epoch_;
    ++active_;
    lk.unlock();
    drain();
    lk.lock();
    if (--active_ == 0) cv_done_.notify_all();
  }
}

void WorkerPool::run(std::size_t n_items, const std::function<void(std::size_t)>& fn) {
  if (n_items == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    n_items_ = n_items;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    completed_ = 0;
    error_ = nullptr;
    running_ = true;
    ++epoch_;
  }
  cv_start_.notify_all();
  drain();  // the caller participates
  std::unique_lock<std::mutex> lk(mu_);
  // Wait for completion AND for every pool thread to leave drain():
  // a straggler still inside drain() must not observe the next run's
  // reset of next_/job_.
  cv_done_.wait(lk, [&] { return completed_ == n_items_ && active_ == 0; });
  running_ = false;
  job_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace heteroplace::sim
