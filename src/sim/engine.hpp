#pragma once

// Discrete-event simulation engine.
//
// Deterministic: events fire in (time, priority, FIFO) order; callbacks
// may schedule and cancel further events. Time is in simulated seconds
// (util::Seconds at the API surface, raw double inside the queue for
// speed).
//
// threads=1 (the default) is the strictly single-threaded pinned
// reference. threads=N>1 enables the parallel batch mode: a maximal run
// of consecutive ready events sharing (time, priority) whose records
// carry a ShardId is dispatched to a fixed worker pool — same-shard
// events stay sequential in pop order, distinct shards run concurrently
// — and their effects (staged pushes, cancels) merge at a deterministic
// barrier in batch pop order. The result is bit-identical to threads=1;
// schedules that cannot be reproduced bit-identically fail loudly with
// std::logic_error (see event_queue.hpp). Untagged events (kNoShard)
// always execute serially on the engine's thread.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace heteroplace::sim {

class WorkerPool;
class EngineObserver;

/// Wall-clock attribution of dispatch time, collected only when
/// enable_timing() was called (obs.profile); all zeros otherwise. Like
/// EngineStats this is machine-dependent diagnostics — never folded into
/// result digests.
struct EngineTiming {
  std::uint64_t serial_events{0};
  std::uint64_t serial_ns{0};
  /// Serial time split by priority class (priority_class_index order).
  std::array<std::uint64_t, 8> serial_class_events{};
  std::array<std::uint64_t, 8> serial_class_ns{};
  /// Wall time inside pool_->run() for parallel batches.
  std::uint64_t batch_exec_ns{0};
  /// Wall time inside the deterministic merge barrier (staged replay).
  std::uint64_t merge_barrier_ns{0};
};

/// Map an EventPriority value to a stable class index 0..7 for
/// EngineTiming's per-class arrays (unknown priorities land in class 7).
[[nodiscard]] int priority_class_index(int priority);
/// Human-readable name for a priority class index ("arrival", "fault", ...).
[[nodiscard]] const char* priority_class_name(int class_index);

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] util::Seconds now() const { return util::Seconds{now_}; }

  /// Schedule at absolute simulated time `t` (must be >= now()).
  EventHandle schedule_at(util::Seconds t, EventPriority priority, EventCallback cb) {
    return schedule_at(t, priority, kNoShard, std::move(cb));
  }

  /// Sharded overload: tag the event for parallel batch execution. Only
  /// events whose effects are confined to the shard (one domain's world,
  /// controller, executor, power manager) may carry a tag.
  EventHandle schedule_at(util::Seconds t, EventPriority priority, ShardId shard,
                          EventCallback cb);

  /// Schedule `dt` seconds from now (dt >= 0).
  EventHandle schedule_in(util::Seconds dt, EventPriority priority, EventCallback cb) {
    return schedule_at(util::Seconds{now_ + dt.get()}, priority, kNoShard, std::move(cb));
  }

  EventHandle schedule_in(util::Seconds dt, EventPriority priority, ShardId shard,
                          EventCallback cb) {
    return schedule_at(util::Seconds{now_ + dt.get()}, priority, shard, std::move(cb));
  }

  /// Worker threads for batch execution; 1 = serial (pinned reference).
  /// Must not be called while run()/run_until() is executing.
  void set_threads(unsigned n);
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run until the event queue is empty or `stop()` is called.
  void run();

  /// Run events with time <= t_end, then set now() = t_end.
  /// Events exactly at t_end do fire.
  void run_until(util::Seconds t_end);

  /// Fire exactly one event if any; returns false when the queue is
  /// empty. Always serial, regardless of threads().
  bool step();

  /// Request that run()/run_until() return after the current callback
  /// (with threads>1: after the current batch). Safe from workers.
  void stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.live_size(); }

  /// Batch-mode counters (0 when threads=1): batches dispatched to the
  /// pool and events they contained.
  [[nodiscard]] std::uint64_t parallel_batches() const { return parallel_batches_; }
  [[nodiscard]] std::uint64_t batched_events() const { return batched_events_; }

  /// Attach an observability hook (see engine_observer.hpp). Not owned;
  /// must outlive the run. nullptr (the default) detaches — the dispatch
  /// path then makes no observer calls at all.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Collect wall-clock dispatch timing into timing(). Off by default:
  /// enabling adds two steady_clock reads per serial event.
  void enable_timing(bool on = true) { timing_enabled_ = on; }
  [[nodiscard]] const EngineTiming& timing() const { return timing_; }

 private:
  /// One scheduling quantum in batch mode: either a serial step (top
  /// event unsharded) or one batch. Returns false when the queue is
  /// empty or the next event lies beyond `bound`.
  bool parallel_step(double bound);

  EventQueue queue_;
  double now_{0.0};
  std::uint64_t executed_{0};
  std::atomic<bool> stop_requested_{false};

  unsigned threads_{1};
  EngineObserver* observer_{nullptr};
  bool timing_enabled_{false};
  EngineTiming timing_;
  std::unique_ptr<WorkerPool> pool_;
  std::uint64_t parallel_batches_{0};
  std::uint64_t batched_events_{0};
  // Per-batch scratch, reused across batches to avoid reallocation.
  std::vector<EventCallback> batch_cbs_;
  std::vector<ShardId> batch_shards_;
  std::vector<std::vector<std::size_t>> groups_;  // item indices, pop order
  std::size_t n_groups_{0};
  std::unordered_map<ShardId, std::size_t> group_of_;
};

}  // namespace heteroplace::sim
