#pragma once

// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, priority, FIFO)
// order; callbacks may schedule and cancel further events. Time is in
// simulated seconds (util::Seconds at the API surface, raw double inside
// the queue for speed).

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace heteroplace::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] util::Seconds now() const { return util::Seconds{now_}; }

  /// Schedule at absolute simulated time `t` (must be >= now()).
  EventHandle schedule_at(util::Seconds t, EventPriority priority, EventCallback cb);

  /// Schedule `dt` seconds from now (dt >= 0).
  EventHandle schedule_in(util::Seconds dt, EventPriority priority, EventCallback cb) {
    return schedule_at(util::Seconds{now_ + dt.get()}, priority, std::move(cb));
  }

  /// Run until the event queue is empty or `stop()` is called.
  void run();

  /// Run events with time <= t_end, then set now() = t_end.
  /// Events exactly at t_end do fire.
  void run_until(util::Seconds t_end);

  /// Fire exactly one event if any; returns false when the queue is empty.
  bool step();

  /// Request that run()/run_until() return after the current callback.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.live_size(); }

 private:
  EventQueue queue_;
  double now_{0.0};
  std::uint64_t executed_{0};
  bool stop_requested_{false};
};

}  // namespace heteroplace::sim
