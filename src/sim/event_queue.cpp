#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace heteroplace::sim {

EventQueue::EventQueue() {
  auto& reg = detail::QueueRegistry::instance();
  queue_id_ = reg.next_id++;
  reg.live.emplace_back(this, queue_id_);
}

EventQueue::~EventQueue() {
  auto& live = detail::QueueRegistry::instance().live;
  bool found = false;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].first == this) {
      live[i] = live.back();
      live.pop_back();
      found = true;
      break;
    }
  }
  // Not found ⇒ the queue is being destroyed on a different thread than
  // it was created on, which would leave a dangling registry entry on
  // the creating thread (handles there would pass the liveness check
  // and touch freed memory). A queue and its handles belong to one
  // thread — fail loudly rather than corrupt silently.
  assert(found && "EventQueue destroyed on a different thread than it was created");
  (void)found;
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNil;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t idx) const {
  Slot& s = slots_[idx];
  s.callback = nullptr;
  s.in_use = false;
  s.cancelled = false;
  ++s.generation;  // invalidate outstanding handles
  s.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::sift_up(std::size_t pos) const {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!moving.fires_before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(std::size_t pos) const {
  const std::size_t n = heap_.size();
  const HeapEntry moving = heap_[pos];
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].fires_before(heap_[best])) best = c;
    }
    if (!heap_[best].fires_before(moving)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

void EventQueue::heap_remove_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_dead() const {
  if (dead_ == 0) return;
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    const std::uint32_t idx = heap_.front().slot;
    heap_remove_top();
    release_slot(idx);
    --dead_;
  }
}

EventHandle EventQueue::push(double time, EventPriority priority, EventCallback cb) {
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  const std::uint64_t seq = next_seq_++;
  s.callback = std::move(cb);
  s.in_use = true;
  s.cancelled = false;
  const std::uint64_t order =
      (static_cast<std::uint64_t>(static_cast<std::uint16_t>(static_cast<int>(priority))) << 48) |
      (seq & kSeqMask);
  heap_.push_back(HeapEntry{time, order, idx});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventHandle{this, queue_id_, idx, s.generation};
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

double EventQueue::next_time() const {
  drop_dead();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty());
  const std::uint32_t idx = heap_.front().slot;
  Popped out{heap_.front().time, std::move(slots_[idx].callback)};
  heap_remove_top();
  release_slot(idx);
  --live_;
  return out;
}

bool EventQueue::handle_pending(std::uint32_t slot, std::uint32_t generation) const {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.in_use && s.generation == generation && !s.cancelled;
}

bool EventQueue::handle_cancel(std::uint32_t slot, std::uint32_t generation) {
  if (!handle_pending(slot, generation)) return false;
  Slot& s = slots_[slot];
  s.cancelled = true;
  s.callback = nullptr;  // release captured state eagerly
  ++dead_;
  --live_;  // a cancelled event is no longer live (the heap entry is swept lazily)
  return true;
}

}  // namespace heteroplace::sim
