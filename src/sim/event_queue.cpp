#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>
#include <utility>

namespace heteroplace::sim {

namespace detail {
namespace {

/// Backing store for the liveness cells. Intentionally leaked: handles
/// may be resolved during static destruction (e.g. a global fixture
/// torn down after main), and a destroyed pool would turn that into a
/// use-after-free. The pool holds 8 bytes per high-water queue count.
struct CellPool {
  std::mutex mu;
  std::deque<std::atomic<std::uint64_t>> cells;  // deque: stable addresses
  std::vector<std::atomic<std::uint64_t>*> free_cells;
  std::uint64_t next_id{1};
};

CellPool& cell_pool() {
  static CellPool* pool = new CellPool;
  return *pool;
}

}  // namespace

QueueLiveness QueueLiveness::acquire() {
  CellPool& p = cell_pool();
  std::lock_guard<std::mutex> lk(p.mu);
  std::atomic<std::uint64_t>* cell = nullptr;
  if (!p.free_cells.empty()) {
    cell = p.free_cells.back();
    p.free_cells.pop_back();
  } else {
    cell = &p.cells.emplace_back(0);
  }
  // Ids are never reused, so a handle holding an old id can never match
  // a recycled cell's new owner.
  const std::uint64_t id = p.next_id++;
  cell->store(id, std::memory_order_release);
  return QueueLiveness{cell, id};
}

void QueueLiveness::release(std::atomic<std::uint64_t>* cell) {
  cell->store(0, std::memory_order_release);
  CellPool& p = cell_pool();
  std::lock_guard<std::mutex> lk(p.mu);
  p.free_cells.push_back(cell);
}

}  // namespace detail

thread_local EventQueue::TlsStaging EventQueue::tls_staging_{};

EventQueue::EventQueue() {
  const detail::QueueLiveness lv = detail::QueueLiveness::acquire();
  live_cell_ = lv.cell;
  queue_id_ = lv.id;
}

EventQueue::~EventQueue() { detail::QueueLiveness::release(live_cell_); }

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNil;
    --free_count_;
    return idx;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::free_list_push(std::uint32_t idx) const {
  slots_[idx].next_free = free_head_;
  free_head_ = idx;
  ++free_count_;
}

void EventQueue::release_slot(std::uint32_t idx) const {
  Slot& s = slots_[idx];
  s.callback = nullptr;
  s.cancelled = false;
  s.staged = false;
  s.executing = false;
  // odd -> even: free, and all outstanding handles invalidated
  s.gen_state.store(s.gen_state.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  free_list_push(idx);
}

void EventQueue::sift_up(std::size_t pos) const {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!moving.fires_before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(std::size_t pos) const {
  const std::size_t n = heap_.size();
  const HeapEntry moving = heap_[pos];
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].fires_before(heap_[best])) best = c;
    }
    if (!heap_[best].fires_before(moving)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

void EventQueue::heap_remove_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_dead() const {
  if (dead_ == 0) return;
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    const std::uint32_t idx = heap_.front().slot;
    heap_remove_top();
    release_slot(idx);
    --dead_;
  }
}

void EventQueue::heap_insert(double time, std::uint16_t priority_bits, std::uint64_t seq,
                             std::uint32_t slot) {
  const std::uint64_t order =
      (static_cast<std::uint64_t>(priority_bits) << 48) | (seq & kSeqMask);
  heap_.push_back(HeapEntry{time, order, slot});
  sift_up(heap_.size() - 1);
}

EventHandle EventQueue::push(double time, EventPriority priority, EventCallback cb,
                             ShardId shard) {
  if (tls_staging_.queue == this) return staged_push(time, priority, std::move(cb), shard);
  if (mt_guard_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "EventQueue::push: called during a parallel batch from a thread that is not "
        "executing a batch item (no staging context); this schedule cannot be made "
        "deterministic");
  }
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  const std::uint64_t seq = next_seq_++;
  s.callback = std::move(cb);
  s.cancelled = false;
  s.shard = shard;
  const std::uint32_t gen = s.gen_state.load(std::memory_order_relaxed) + 1;  // even -> odd
  s.gen_state.store(gen, std::memory_order_relaxed);
  heap_insert(time, static_cast<std::uint16_t>(static_cast<int>(priority)), seq, idx);
  ++live_;
  return EventHandle{this, live_cell_, queue_id_, idx, gen};
}

EventHandle EventQueue::staged_push(double time, EventPriority priority, EventCallback cb,
                                    ShardId shard) {
  TlsStaging& t = tls_staging_;
  const auto prio = static_cast<std::uint16_t>(static_cast<int>(priority));
  if (time < t.batch_time || (time == t.batch_time && prio < t.batch_priority_bits)) {
    throw std::logic_error(
        "EventQueue: a parallel batch item scheduled an event at the batch timestamp with "
        "a lower priority; a serial run would interleave it mid-batch, which cannot be "
        "reproduced bit-identically with engine.threads>1 (run with engine.threads=1, or "
        "give the action a nonzero latency)");
  }
  ItemStaging& item = *t.item;
  if (item.slot_cache.empty()) refill_slot_cache(item.slot_cache);
  const std::uint32_t idx = item.slot_cache.back();
  item.slot_cache.pop_back();
  Slot& s = slots_[idx];
  s.callback = std::move(cb);
  s.cancelled = false;
  s.staged = true;
  s.shard = shard;
  const std::uint32_t gen = s.gen_state.load(std::memory_order_relaxed) + 1;
  s.gen_state.store(gen, std::memory_order_relaxed);
  item.pushes.push_back(StagedPush{time, prio, idx});
  return EventHandle{this, live_cell_, queue_id_, idx, gen};
}

void EventQueue::refill_slot_cache(std::vector<std::uint32_t>& cache) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t taken = 0;
  while (taken < kSlotCacheRefill && free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    slots_[idx].next_free = kNil;
    cache.push_back(idx);
    ++taken;
  }
  free_count_ -= taken;
  if (taken == 0) {
    // Workers may not grow the slab (reallocation would race every
    // unsynchronized slot access); begin_parallel pre-sizes the spare
    // from the high-water mark, so hitting this means a >4x staged-push
    // spike within one batch.
    throw std::logic_error(
        "EventQueue: slot slab exhausted during a parallel batch (staged pushes outgrew "
        "the pre-sized spare); rerun with engine.threads=1");
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

double EventQueue::next_time() const {
  drop_dead();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::TopKey EventQueue::top_key() const {
  drop_dead();
  assert(!heap_.empty());
  const HeapEntry& e = heap_.front();
  return TopKey{e.time, static_cast<std::uint16_t>(e.order >> 48), slots_[e.slot].shard};
}

EventQueue::Popped EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty());
  const std::uint32_t idx = heap_.front().slot;
  Popped out{heap_.front().time, std::move(slots_[idx].callback)};
  heap_remove_top();
  release_slot(idx);
  --live_;
  return out;
}

std::size_t EventQueue::pop_batch(std::vector<EventCallback>& callbacks,
                                  std::vector<ShardId>& shards) {
  callbacks.clear();
  shards.clear();
  assert(batch_slots_.empty());
  drop_dead();
  assert(!heap_.empty());
  if (slots_[heap_.front().slot].shard == kNoShard) return 0;
  const double t = heap_.front().time;
  const std::uint64_t prio_bits = heap_.front().order >> 48;
  for (;;) {
    const std::uint32_t idx = heap_.front().slot;
    Slot& s = slots_[idx];
    callbacks.push_back(std::move(s.callback));
    shards.push_back(s.shard);
    batch_slots_.push_back(idx);
    s.executing = true;
    heap_remove_top();
    --live_;
    drop_dead();
    if (heap_.empty()) break;
    const HeapEntry& top = heap_.front();
    if (top.time != t || (top.order >> 48) != prio_bits) break;
    if (slots_[top.slot].shard == kNoShard) break;
  }
  if (batch_slots_.size() == 1) {
    // Exactly the serial pop: record released before the callback runs.
    slots_[batch_slots_[0]].executing = false;
    release_slot(batch_slots_[0]);
    batch_slots_.clear();
  }
  return callbacks.size();
}

void EventQueue::begin_parallel(double batch_time, std::uint16_t batch_priority_bits) {
  assert(batch_slots_.size() >= 2);
  batch_time_ = batch_time;
  batch_priority_bits_ = batch_priority_bits;
  if (staging_.size() < batch_slots_.size()) staging_.resize(batch_slots_.size());
  for (std::size_t i = 0; i < batch_slots_.size(); ++i) {
    staging_[i].pushes.clear();
    assert(staging_[i].slot_cache.empty());
  }
  // Pre-grow the slab so workers only ever pop the freelist: reallocation
  // is forbidden inside the region. 4x the staged high water + one cache
  // refill per item covers growth between consecutive batches.
  const std::size_t target = std::max<std::size_t>(8192, 4 * staged_high_water_) +
                             kSlotCacheRefill * batch_slots_.size();
  while (free_count_ < target) {
    slots_.emplace_back();
    free_list_push(static_cast<std::uint32_t>(slots_.size() - 1));
  }
  mt_guard_.store(true, std::memory_order_release);
}

void EventQueue::bind_staging(std::size_t item) {
  tls_staging_ = TlsStaging{this, &staging_[item], batch_time_, batch_priority_bits_};
}

void EventQueue::unbind_staging() { tls_staging_ = TlsStaging{}; }

void EventQueue::release_staging(bool replay) {
  mt_guard_.store(false, std::memory_order_release);
  std::size_t staged_total = 0;
  const std::size_t items = batch_slots_.size();
  for (std::size_t i = 0; i < items; ++i) {
    ItemStaging& item = staging_[i];
    staged_total += item.pushes.size();
    for (const StagedPush& p : item.pushes) {
      Slot& s = slots_[p.slot];
      s.staged = false;
      if (replay) {
        // Replaying in batch pop order assigns exactly the sequence
        // numbers a serial run would have; a staged-then-cancelled push
        // still consumes its number (serial assigned it at push time).
        const std::uint64_t seq = next_seq_++;
        if (!s.cancelled) {
          heap_insert(p.time, p.priority_bits, seq, p.slot);
          ++live_;
          continue;
        }
      }
      release_slot(p.slot);
    }
    item.pushes.clear();
    for (const std::uint32_t idx : item.slot_cache) free_list_push(idx);
    item.slot_cache.clear();
  }
  for (const std::uint32_t idx : batch_slots_) {
    slots_[idx].executing = false;
    release_slot(idx);
  }
  batch_slots_.clear();
  staged_high_water_ = std::max(staged_high_water_, staged_total);
}

void EventQueue::end_parallel() { release_staging(/*replay=*/true); }

void EventQueue::cancel_parallel() { release_staging(/*replay=*/false); }

bool EventQueue::pending_impl(std::uint32_t slot, std::uint32_t generation) const {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  // The generation probe must come first: on a mismatch no other field
  // may be read (the slot may be concurrently re-acquired by a staged
  // push on another worker; gen_state is the only atomic field).
  if (s.gen_state.load(std::memory_order_relaxed) != generation) return false;
  if (s.executing) {
    throw std::logic_error(
        "EventHandle: handle targets an event inside the currently-executing parallel "
        "batch; a serial run may not have popped it yet, so the outcome cannot be "
        "reproduced bit-identically with engine.threads>1 (run with engine.threads=1)");
  }
  return !s.cancelled;
}

bool EventQueue::cancel_impl(std::uint32_t slot, std::uint32_t generation) {
  if (!pending_impl(slot, generation)) return false;
  Slot& s = slots_[slot];
  s.cancelled = true;
  s.callback = nullptr;   // release captured state eagerly
  if (s.staged) return true;  // no heap entry yet; reconciled at replay
  ++dead_;
  --live_;  // a cancelled event is no longer live (the heap entry is swept lazily)
  return true;
}

bool EventQueue::handle_pending(std::uint32_t slot, std::uint32_t generation) const {
  if (mt_guard_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lk(mu_);
    return pending_impl(slot, generation);
  }
  return pending_impl(slot, generation);
}

bool EventQueue::handle_cancel(std::uint32_t slot, std::uint32_t generation) {
  if (mt_guard_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lk(mu_);
    return cancel_impl(slot, generation);
  }
  return cancel_impl(slot, generation);
}

}  // namespace heteroplace::sim
