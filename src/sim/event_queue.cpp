#include "sim/event_queue.hpp"

#include <cassert>

namespace heteroplace::sim {

EventHandle EventQueue::push(double time, EventPriority priority, EventCallback cb) {
  auto rec = std::make_shared<detail::EventRecord>();
  rec->time = time;
  rec->priority = static_cast<int>(priority);
  rec->seq = next_seq_++;
  rec->callback = std::move(cb);
  EventHandle handle{std::weak_ptr<detail::EventRecord>{rec}};
  heap_.push(std::move(rec));
  ++live_;
  return handle;
}

void EventQueue::drop_dead() const {
  while (!heap_.empty() && heap_.top()->cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

double EventQueue::next_time() const {
  drop_dead();
  assert(!heap_.empty());
  return heap_.top()->time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead();
  assert(!heap_.empty());
  auto rec = heap_.top();
  heap_.pop();
  --live_;
  return Popped{rec->time, std::move(rec->callback)};
}

}  // namespace heteroplace::sim
