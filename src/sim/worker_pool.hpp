#pragma once

// Fixed-size worker pool for the engine's parallel batch mode.
//
// run(n, fn) executes fn(0..n-1), each exactly once, across the pool's
// threads plus the calling thread, and blocks until every item has
// completed (or been skipped after a failure). Item-to-thread assignment
// is work-stealing via one atomic counter — nondeterministic, which is
// fine because the engine only hands it mutually independent items and
// merges their effects at a deterministic barrier afterwards.
//
// The first exception thrown by an item is captured and rethrown from
// run(); remaining unstarted items are skipped (the batch is already
// lost — fail fast rather than pile more work on a torn state).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace heteroplace::sim {

class WorkerPool {
 public:
  /// `threads` counts the calling thread: the pool spawns threads-1.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Execute fn(i) for i in [0, n_items); the caller participates.
  /// Returns after all items finished AND all pool threads left the
  /// work loop (so the next run() can safely reset shared state).
  void run(std::size_t n_items, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void drain();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* job_{nullptr};
  std::size_t n_items_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::size_t completed_{0};
  std::size_t active_{0};  // pool threads currently inside drain()
  std::uint64_t epoch_{0};
  bool running_{false};  // current epoch still open; gates stale wake-ups
  bool shutdown_{false};
  std::exception_ptr error_;
};

}  // namespace heteroplace::sim
