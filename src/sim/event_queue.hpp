#pragma once

// Pending-event set for the discrete-event engine.
//
// Ordering is total and deterministic: (time, priority, insertion sequence).
// Cancellation is O(1) via lazy deletion: a handle flips a flag on the
// record and the pop loop skips dead entries. This is the standard
// technique for simulators whose events are frequently rescheduled (job
// completion events are invalidated every time the controller changes a
// job's CPU share).
//
// Layout, chosen against bench/perf_baseline.cpp (the seed shared_ptr
// implementation survives in bench/legacy/ as the comparison point):
//
//  - Records live in a slab-allocated pool indexed by slot number; a
//    freelist recycles slots, so push/pop/cancel perform zero heap
//    allocations after warm-up.
//  - The heap is 4-ary and its entries carry the full ordering key
//    (time + packed priority|seq), so sift comparisons touch only the
//    contiguous heap array — never the slab, never a pointer chase.
//    Pop cost is dominated by these comparisons; the seed implementation
//    dereferenced two heap-allocated records per comparison.
//  - Handles address records as (slot, generation); a freed slot bumps
//    its generation, so stale handles fail in O(1) without shared
//    ownership. Queue liveness is checked against a process-wide pool of
//    atomic liveness cells (see detail::QueueLiveness): each queue owns
//    one cell holding its unique id for its lifetime, and a handle is
//    dead unless one acquire-load of that cell still matches. This is
//    lock-free, O(1), and — unlike the thread-local registry it
//    replaced — correct when a handle is resolved or cancelled on a
//    worker thread rather than the queue's owning thread.
//
// Threading contract: outside a parallel batch (below) a queue belongs
// to one thread at a time, and resolving a handle must not race the
// queue's destruction (the liveness cell makes use-after-destruction
// *detected* when the operations are ordered, not safe when they race).
//
// Parallel batch protocol (driven by sim::Engine when engine.threads>1):
// events may carry a ShardId; a maximal run of consecutive ready events
// with identical (time, priority) and a shard tag is popped as one batch
// (pop_batch) and executed by a worker pool. During the batch
// (begin_parallel .. end_parallel):
//  - push from a worker is *staged*: the record is acquired immediately
//    (from a per-worker slot cache, so the global mutex is touched once
//    per kSlotCacheRefill pushes) and a valid handle returned, but the
//    sequence number and heap insertion are deferred to end_parallel,
//    which replays staged pushes in batch pop order — reproducing the
//    exact sequence numbers a serial run would have assigned.
//  - cancel/pending from a worker lock the queue mutex (mt_guard_ makes
//    this zero-cost when no batch is running: one relaxed atomic load).
//  - operations that cannot be made bit-identical to the serial
//    schedule fail loudly with std::logic_error instead of diverging:
//    staging an event at the batch timestamp with a *lower* priority
//    (a serial run would interleave it mid-batch), and resolving or
//    cancelling a handle that targets an event inside the currently
//    executing batch (a serial run might not have popped it yet).

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace heteroplace::sim {

/// Scheduling priority at equal timestamps; lower values run first.
/// Named constants keep cross-module ordering explicit. Values must fit
/// in 16 bits (they share a packed ordering word with the sequence
/// number).
enum class EventPriority : int {
  kWorkloadArrival = 0,   // job submissions, demand-trace changes
  kFault = 5,             // fault injection and recovery (crashes land after
                          // same-instant arrivals, before everything else
                          // reacts; recoveries precede the next control pass)
  kStateTransition = 10,  // action completions, job completions
  kController = 20,       // control-cycle evaluation (sees arrivals at t)
  kMigration = 25,        // migration-manager ticks (see controller output;
                          // suspend-complete checks fire after transitions)
  kPower = 27,            // power-manager ticks and park/wake completions
                          // (after controllers and migration, before samplers)
  kSampling = 30,         // metric sampling (sees the controller's output)
};

using EventCallback = std::function<void()>;

/// Shard tag for events whose effects are confined to one domain; the
/// engine may execute same-(time, priority) events of *distinct* shards
/// concurrently, and always executes same-shard events sequentially in
/// pop order. Untagged events (kNoShard) are strictly serial.
using ShardId = std::uint32_t;
inline constexpr ShardId kNoShard = 0xffffffffu;

class EventQueue;

namespace detail {
/// Process-wide pool of queue-liveness cells. Each live queue owns one
/// cell storing its unique id; destruction zeroes the cell and returns
/// it to a freelist (cells are pooled forever — a few bytes per
/// high-water queue count). Ids are never reused, so a recycled cell can
/// never falsely revive a stale handle. The read side (EventHandle) is
/// a single acquire load — no lock, valid from any thread.
struct QueueLiveness {
  std::atomic<std::uint64_t>* cell;
  std::uint64_t id;

  static QueueLiveness acquire();
  static void release(std::atomic<std::uint64_t>* cell);
};
}  // namespace detail

/// Handle to a scheduled event; cancel() is idempotent and safe after the
/// event has fired or the owning queue was destroyed (no effect then).
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

  /// Prevent the event from firing. Returns true if it was still pending.
  bool cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, const std::atomic<std::uint64_t>* live_cell,
              std::uint64_t queue_id, std::uint32_t slot, std::uint32_t generation)
      : queue_(queue),
        live_cell_(live_cell),
        queue_id_(queue_id),
        slot_(slot),
        generation_(generation) {}

  EventQueue* queue_{nullptr};
  const std::atomic<std::uint64_t>* live_cell_{nullptr};
  std::uint64_t queue_id_{0};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `cb` at absolute `time`. Ties broken by priority then FIFO.
  /// `shard` tags the event for the parallel batch protocol (see file
  /// comment); kNoShard events never batch.
  EventHandle push(double time, EventPriority priority, EventCallback cb,
                   ShardId shard = kNoShard);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Timestamp of the earliest live event; precondition: !empty().
  [[nodiscard]] double next_time() const;

  /// Remove and return the earliest live event's callback along with its
  /// time. Precondition: !empty().
  struct Popped {
    double time;
    EventCallback callback;
  };
  Popped pop();

  [[nodiscard]] std::size_t live_size() const { return live_; }
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

  // --- Parallel batch protocol (engine-facing; see file comment) ---

  /// Full ordering key + shard of the earliest live event.
  /// Precondition: !empty().
  struct TopKey {
    double time;
    std::uint16_t priority_bits;
    ShardId shard;
  };
  [[nodiscard]] TopKey top_key() const;

  /// Pop the maximal run of consecutive ready events sharing the top
  /// (time, priority) whose records carry a shard tag, moving their
  /// callbacks/shards out in pop order. Returns 0 without popping if the
  /// top event is unsharded. A run of exactly one event is released
  /// immediately (serial-identical semantics: the engine just runs the
  /// callback); a run of two or more leaves the records in "executing"
  /// state until end_parallel()/cancel_parallel().
  std::size_t pop_batch(std::vector<EventCallback>& callbacks, std::vector<ShardId>& shards);

  /// Enter the parallel region for the batch just popped (size >= 2):
  /// arms the mutex guard, sizes the per-item staging buffers, and
  /// pre-grows the slot slab so workers never reallocate it.
  void begin_parallel(double batch_time, std::uint16_t batch_priority_bits);

  /// Bind/unbind this thread's staged-push context to batch item `item`
  /// (its index in pop order). Workers bracket each item's callback.
  void bind_staging(std::size_t item);
  void unbind_staging();

  /// Leave the parallel region: replays staged pushes in batch pop
  /// order (assigning the sequence numbers a serial run would have) and
  /// releases the batch's records. Caller must have joined all workers.
  void end_parallel();

  /// Abort path of end_parallel() after a worker threw: releases all
  /// batch + staged records without replaying. The queue stays valid
  /// but the simulation state is torn; callers propagate the exception.
  void cancel_parallel();

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// 48-bit sequence numbers leave 16 bits for the priority in the
  /// packed ordering word; ~2.8e14 events outlast any simulation.
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 48) - 1;
  /// Slots handed to a worker's staged-push cache per mutex acquisition.
  static constexpr std::size_t kSlotCacheRefill = 64;

  struct Slot {
    EventCallback callback;
    /// Odd = acquired, even = free; a handle is live iff this still
    /// equals the value captured at push. Atomic so a stale handle's
    /// liveness probe from one worker never races another worker
    /// acquiring the (recycled) slot — the only two fields such a probe
    /// may touch are this and, when it matches, `cancelled`.
    std::atomic<std::uint32_t> gen_state{0};
    std::uint32_t next_free{kNil};  // freelist link; kNil while in use
    ShardId shard{kNoShard};
    bool cancelled{false};
    /// Acquired by a worker inside a parallel region; seq/heap insertion
    /// deferred to the end_parallel() replay.
    bool staged{false};
    /// Member of the batch currently executing (popped, not yet
    /// released). Handle operations on such a record fail loudly.
    bool executing{false};

    // The atomic deletes the implicit moves; slab growth only ever
    // happens on the owning thread, where a plain copy of the counter
    // is sound.
    Slot() = default;
    Slot(Slot&& o) noexcept
        : callback(std::move(o.callback)),
          gen_state(o.gen_state.load(std::memory_order_relaxed)),
          next_free(o.next_free),
          shard(o.shard),
          cancelled(o.cancelled),
          staged(o.staged),
          executing(o.executing) {}
    Slot& operator=(Slot&& o) noexcept {
      callback = std::move(o.callback);
      gen_state.store(o.gen_state.load(std::memory_order_relaxed), std::memory_order_relaxed);
      next_free = o.next_free;
      shard = o.shard;
      cancelled = o.cancelled;
      staged = o.staged;
      executing = o.executing;
      return *this;
    }
  };

  /// Heap entry carrying the complete ordering key, so sifting never
  /// touches the slab.
  struct HeapEntry {
    double time;
    std::uint64_t order;  // priority (high 16 bits) | seq (low 48 bits)
    std::uint32_t slot;

    [[nodiscard]] bool fires_before(const HeapEntry& o) const {
      if (time != o.time) return time < o.time;
      return order < o.order;
    }
  };

  struct StagedPush {
    double time;
    std::uint16_t priority_bits;
    std::uint32_t slot;
  };

  /// Per-batch-item staging state. Exactly one worker runs a given item,
  /// so no lock guards it; the slot cache amortizes freelist access.
  struct ItemStaging {
    std::vector<StagedPush> pushes;
    std::vector<std::uint32_t> slot_cache;
  };

  struct TlsStaging {
    EventQueue* queue{nullptr};
    ItemStaging* item{nullptr};
    double batch_time{0.0};
    std::uint16_t batch_priority_bits{0};
  };
  static thread_local TlsStaging tls_staging_;  // defined in event_queue.cpp

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) const;
  void free_list_push(std::uint32_t idx) const;
  void sift_up(std::size_t pos) const;
  void sift_down(std::size_t pos) const;
  void heap_remove_top() const;
  /// Free cancelled records at the heap top (lazy-deletion sweep).
  void drop_dead() const;

  EventHandle staged_push(double time, EventPriority priority, EventCallback cb, ShardId shard);
  void refill_slot_cache(std::vector<std::uint32_t>& cache);
  void heap_insert(double time, std::uint16_t priority_bits, std::uint64_t seq,
                   std::uint32_t slot);
  void release_staging(bool replay);

  [[nodiscard]] bool handle_pending(std::uint32_t slot, std::uint32_t generation) const;
  bool handle_cancel(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] bool pending_impl(std::uint32_t slot, std::uint32_t generation) const;
  bool cancel_impl(std::uint32_t slot, std::uint32_t generation);

  // The const query API (empty / next_time) performs the lazy-deletion
  // sweep, hence the mutable storage (same contract as the original
  // priority_queue implementation).
  mutable std::vector<Slot> slots_;
  mutable std::vector<HeapEntry> heap_;
  mutable std::uint32_t free_head_{kNil};
  mutable std::size_t free_count_{0};
  /// Cancelled-but-unswept records. While zero (the common case between
  /// reschedule bursts) the lazy-deletion sweep skips its per-call slab
  /// probe entirely.
  mutable std::size_t dead_{0};
  std::size_t live_{0};
  std::uint64_t next_seq_{0};

  std::atomic<std::uint64_t>* live_cell_{nullptr};
  std::uint64_t queue_id_{0};

  // Parallel-region state. mt_guard_ is false except between
  // begin_parallel and end_parallel; every handle/push path checks it
  // with one relaxed load, so the serial paths above stay lock-free.
  std::atomic<bool> mt_guard_{false};
  mutable std::mutex mu_;
  std::vector<std::uint32_t> batch_slots_;
  std::vector<ItemStaging> staging_;
  double batch_time_{0.0};
  std::uint16_t batch_priority_bits_{0};
  /// Largest staged-push count seen in one batch; begin_parallel sizes
  /// the slot-slab spare from it so workers never grow the slab.
  std::size_t staged_high_water_{0};
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && live_cell_->load(std::memory_order_acquire) == queue_id_ &&
         queue_->handle_pending(slot_, generation_);
}

inline bool EventHandle::cancel() {
  if (queue_ == nullptr || live_cell_->load(std::memory_order_acquire) != queue_id_) {
    return false;
  }
  return queue_->handle_cancel(slot_, generation_);
}

}  // namespace heteroplace::sim
