#pragma once

// Pending-event set for the discrete-event engine.
//
// Ordering is total and deterministic: (time, priority, insertion sequence).
// Cancellation is O(1) via lazy deletion: a handle flips a flag on the
// record and the pop loop skips dead entries. This is the standard
// technique for simulators whose events are frequently rescheduled (job
// completion events are invalidated every time the controller changes a
// job's CPU share).
//
// Layout, chosen against bench/perf_baseline.cpp (the seed shared_ptr
// implementation survives in bench/legacy/ as the comparison point):
//
//  - Records live in a slab-allocated pool indexed by slot number; a
//    freelist recycles slots, so push/pop/cancel perform zero heap
//    allocations after warm-up.
//  - The heap is 4-ary and its entries carry the full ordering key
//    (time + packed priority|seq), so sift comparisons touch only the
//    contiguous heap array — never the slab, never a pointer chase.
//    Pop cost is dominated by these comparisons; the seed implementation
//    dereferenced two heap-allocated records per comparison.
//  - Handles address records as (slot, generation); a freed slot bumps
//    its generation, so stale handles fail in O(1) without shared
//    ownership. Queue liveness is checked against a registry of live
//    queues (see detail::queue_registry), so a handle that outlives its
//    queue degrades safely instead of touching freed memory — without
//    the per-push atomic refcounts a weak_ptr sentinel would cost.
//
// Like the rest of the simulator, a queue and its handles belong to
// one thread; the registry is thread-local, so simulators on separate
// threads are fully independent (as they were with the seed design).

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace heteroplace::sim {

/// Scheduling priority at equal timestamps; lower values run first.
/// Named constants keep cross-module ordering explicit. Values must fit
/// in 16 bits (they share a packed ordering word with the sequence
/// number).
enum class EventPriority : int {
  kWorkloadArrival = 0,   // job submissions, demand-trace changes
  kFault = 5,             // fault injection and recovery (crashes land after
                          // same-instant arrivals, before everything else
                          // reacts; recoveries precede the next control pass)
  kStateTransition = 10,  // action completions, job completions
  kController = 20,       // control-cycle evaluation (sees arrivals at t)
  kMigration = 25,        // migration-manager ticks (see controller output;
                          // suspend-complete checks fire after transitions)
  kPower = 27,            // power-manager ticks and park/wake completions
                          // (after controllers and migration, before samplers)
  kSampling = 30,         // metric sampling (sees the controller's output)
};

using EventCallback = std::function<void()>;

class EventQueue;

namespace detail {
/// Live-queue registry: (queue address, unique queue id). A handle
/// resolves its queue through this table, which makes it safe against
/// both queue destruction and a new queue reusing the same address.
/// The registry is thread-local, so independent simulators on separate
/// threads share no state (no synchronization, no races); a handle
/// resolved on a different thread than its queue's owner simply reports
/// not-pending instead of touching foreign memory.
struct QueueRegistry {
  std::vector<std::pair<const EventQueue*, std::uint64_t>> live;
  std::uint64_t next_id{1};

  static QueueRegistry& instance() {
    thread_local QueueRegistry reg;
    return reg;
  }

  [[nodiscard]] bool alive(const EventQueue* q, std::uint64_t id) const {
    for (const auto& [ptr, qid] : live) {
      if (ptr == q) return qid == id;
    }
    return false;
  }
};
}  // namespace detail

/// Handle to a scheduled event; cancel() is idempotent and safe after the
/// event has fired or the owning queue was destroyed (no effect then).
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

  /// Prevent the event from firing. Returns true if it was still pending.
  bool cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint64_t queue_id, std::uint32_t slot,
              std::uint32_t generation)
      : queue_(queue), queue_id_(queue_id), slot_(slot), generation_(generation) {}

  EventQueue* queue_{nullptr};
  std::uint64_t queue_id_{0};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `cb` at absolute `time`. Ties broken by priority then FIFO.
  EventHandle push(double time, EventPriority priority, EventCallback cb);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Timestamp of the earliest live event; precondition: !empty().
  [[nodiscard]] double next_time() const;

  /// Remove and return the earliest live event's callback along with its
  /// time. Precondition: !empty().
  struct Popped {
    double time;
    EventCallback callback;
  };
  Popped pop();

  [[nodiscard]] std::size_t live_size() const { return live_; }
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// 48-bit sequence numbers leave 16 bits for the priority in the
  /// packed ordering word; ~2.8e14 events outlast any simulation.
  static constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << 48) - 1;

  struct Slot {
    EventCallback callback;
    std::uint32_t generation{0};
    std::uint32_t next_free{kNil};  // freelist link; kNil while in use
    bool in_use{false};
    bool cancelled{false};
  };

  /// Heap entry carrying the complete ordering key, so sifting never
  /// touches the slab.
  struct HeapEntry {
    double time;
    std::uint64_t order;  // priority (high 16 bits) | seq (low 48 bits)
    std::uint32_t slot;

    [[nodiscard]] bool fires_before(const HeapEntry& o) const {
      if (time != o.time) return time < o.time;
      return order < o.order;
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx) const;
  void sift_up(std::size_t pos) const;
  void sift_down(std::size_t pos) const;
  void heap_remove_top() const;
  /// Free cancelled records at the heap top (lazy-deletion sweep).
  void drop_dead() const;

  [[nodiscard]] bool handle_pending(std::uint32_t slot, std::uint32_t generation) const;
  bool handle_cancel(std::uint32_t slot, std::uint32_t generation);

  // The const query API (empty / next_time) performs the lazy-deletion
  // sweep, hence the mutable storage (same contract as the original
  // priority_queue implementation).
  mutable std::vector<Slot> slots_;
  mutable std::vector<HeapEntry> heap_;
  mutable std::uint32_t free_head_{kNil};
  /// Cancelled-but-unswept records. While zero (the common case between
  /// reschedule bursts) the lazy-deletion sweep skips its per-call slab
  /// probe entirely.
  mutable std::size_t dead_{0};
  std::size_t live_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t queue_id_{0};
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && detail::QueueRegistry::instance().alive(queue_, queue_id_) &&
         queue_->handle_pending(slot_, generation_);
}

inline bool EventHandle::cancel() {
  if (queue_ == nullptr || !detail::QueueRegistry::instance().alive(queue_, queue_id_)) {
    return false;
  }
  return queue_->handle_cancel(slot_, generation_);
}

}  // namespace heteroplace::sim
