#pragma once

// Pending-event set for the discrete-event engine.
//
// Ordering is total and deterministic: (time, priority, insertion sequence).
// Cancellation is O(1) via lazy deletion: a handle flips a flag on the
// shared record and the pop loop skips dead entries. This is the standard
// technique for simulators whose events are frequently rescheduled (job
// completion events are invalidated every time the controller changes a
// job's CPU share).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace heteroplace::sim {

/// Scheduling priority at equal timestamps; lower values run first.
/// Named constants keep cross-module ordering explicit.
enum class EventPriority : int {
  kWorkloadArrival = 0,   // job submissions, demand-trace changes
  kStateTransition = 10,  // action completions, job completions
  kController = 20,       // control-cycle evaluation (sees arrivals at t)
  kSampling = 30,         // metric sampling (sees the controller's output)
};

using EventCallback = std::function<void()>;

namespace detail {
struct EventRecord {
  double time;
  int priority;
  std::uint64_t seq;
  EventCallback callback;
  bool cancelled{false};
};
}  // namespace detail

/// Handle to a scheduled event; cancel() is idempotent and safe after the
/// event has fired (it simply has no effect then).
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const {
    auto rec = record_.lock();
    return rec && !rec->cancelled;
  }

  /// Prevent the event from firing. Returns true if it was still pending.
  bool cancel() {
    auto rec = record_.lock();
    if (!rec || rec->cancelled) return false;
    rec->cancelled = true;
    rec->callback = nullptr;  // release captured state eagerly
    return true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<detail::EventRecord> rec) : record_(std::move(rec)) {}
  std::weak_ptr<detail::EventRecord> record_;
};

class EventQueue {
 public:
  /// Schedule `cb` at absolute `time`. Ties broken by priority then FIFO.
  EventHandle push(double time, EventPriority priority, EventCallback cb);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Timestamp of the earliest live event; precondition: !empty().
  [[nodiscard]] double next_time() const;

  /// Remove and return the earliest live event's callback along with its
  /// time. Precondition: !empty().
  struct Popped {
    double time;
    EventCallback callback;
  };
  Popped pop();

  [[nodiscard]] std::size_t live_size() const { return live_; }
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Cmp {
    bool operator()(const std::shared_ptr<detail::EventRecord>& a,
                    const std::shared_ptr<detail::EventRecord>& b) const {
      if (a->time != b->time) return a->time > b->time;
      if (a->priority != b->priority) return a->priority > b->priority;
      return a->seq > b->seq;
    }
  };

  void drop_dead() const;

  mutable std::priority_queue<std::shared_ptr<detail::EventRecord>,
                              std::vector<std::shared_ptr<detail::EventRecord>>, Cmp>
      heap_;
  mutable std::size_t live_{0};
  std::uint64_t next_seq_{0};
};

}  // namespace heteroplace::sim
