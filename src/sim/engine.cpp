#include "sim/engine.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/worker_pool.hpp"

namespace heteroplace::sim {

Engine::Engine() = default;
Engine::~Engine() = default;

EventHandle Engine::schedule_at(util::Seconds t, EventPriority priority, ShardId shard,
                                EventCallback cb) {
  if (t.get() < now_) {
    throw std::invalid_argument("Engine::schedule_at: time " + std::to_string(t.get()) +
                                " is in the past (now=" + std::to_string(now_) + ")");
  }
  return queue_.push(t.get(), priority, std::move(cb), shard);
}

void Engine::set_threads(unsigned n) {
  if (n == 0) n = 1;
  threads_ = n;
  if (n <= 1) {
    pool_.reset();
    return;
  }
  if (!pool_ || pool_->threads() != n) pool_ = std::make_unique<WorkerPool>(n);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  assert(time >= now_);
  now_ = time;
  ++executed_;
  if (callback) callback();
  return true;
}

bool Engine::parallel_step(double bound) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > bound) return false;
  const EventQueue::TopKey key = queue_.top_key();
  if (key.shard == kNoShard) return step();

  const std::size_t n = queue_.pop_batch(batch_cbs_, batch_shards_);
  assert(n >= 1);
  assert(key.time >= now_);
  now_ = key.time;
  executed_ += n;
  if (n == 1) {
    // Single sharded event: pop_batch already released it serial-style.
    if (batch_cbs_[0]) batch_cbs_[0]();
    return true;
  }

  // Group items by shard in first-seen (= pop) order; within a group
  // the pop order is preserved, so same-shard events still execute in
  // the exact serial sequence.
  group_of_.clear();
  n_groups_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = group_of_.try_emplace(batch_shards_[i], n_groups_);
    if (inserted) {
      if (groups_.size() <= n_groups_) groups_.emplace_back();
      groups_[n_groups_].clear();
      ++n_groups_;
    }
    groups_[it->second].push_back(i);
  }

  ++parallel_batches_;
  batched_events_ += n;
  queue_.begin_parallel(key.time, key.priority_bits);
  try {
    pool_->run(n_groups_, [this](std::size_t g) {
      for (const std::size_t item : groups_[g]) {
        queue_.bind_staging(item);
        try {
          if (batch_cbs_[item]) batch_cbs_[item]();
        } catch (...) {
          queue_.unbind_staging();
          throw;
        }
        queue_.unbind_staging();
      }
    });
  } catch (...) {
    queue_.cancel_parallel();
    throw;
  }
  queue_.end_parallel();
  return true;
}

void Engine::run() {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (threads_ <= 1) {
    while (!stop_requested_.load(std::memory_order_relaxed) && step()) {
    }
    return;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (!stop_requested_.load(std::memory_order_relaxed) && parallel_step(kInf)) {
  }
}

void Engine::run_until(util::Seconds t_end) {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (threads_ <= 1) {
    while (!stop_requested_.load(std::memory_order_relaxed) && !queue_.empty() &&
           queue_.next_time() <= t_end.get()) {
      step();
    }
  } else {
    while (!stop_requested_.load(std::memory_order_relaxed) && parallel_step(t_end.get())) {
    }
  }
  if (!stop_requested_.load(std::memory_order_relaxed) && now_ < t_end.get()) {
    now_ = t_end.get();
  }
}

}  // namespace heteroplace::sim
