#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace heteroplace::sim {

EventHandle Engine::schedule_at(util::Seconds t, EventPriority priority, EventCallback cb) {
  if (t.get() < now_) {
    throw std::invalid_argument("Engine::schedule_at: time " + std::to_string(t.get()) +
                                " is in the past (now=" + std::to_string(now_) + ")");
  }
  return queue_.push(t.get(), priority, std::move(cb));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  assert(time >= now_);
  now_ = time;
  ++executed_;
  if (callback) callback();
  return true;
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

void Engine::run_until(util::Seconds t_end) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= t_end.get()) {
    step();
  }
  if (!stop_requested_ && now_ < t_end.get()) now_ = t_end.get();
}

}  // namespace heteroplace::sim
