#include "sim/engine.hpp"

#include <cassert>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

#include "sim/engine_observer.hpp"
#include "sim/worker_pool.hpp"
#include "util/log.hpp"

namespace heteroplace::sim {

namespace {
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

int priority_class_index(int priority) {
  switch (static_cast<EventPriority>(priority)) {
    case EventPriority::kWorkloadArrival:
      return 0;
    case EventPriority::kFault:
      return 1;
    case EventPriority::kStateTransition:
      return 2;
    case EventPriority::kController:
      return 3;
    case EventPriority::kMigration:
      return 4;
    case EventPriority::kPower:
      return 5;
    case EventPriority::kSampling:
      return 6;
  }
  return 7;
}

const char* priority_class_name(int class_index) {
  switch (class_index) {
    case 0:
      return "arrival";
    case 1:
      return "fault";
    case 2:
      return "transition";
    case 3:
      return "controller";
    case 4:
      return "migration";
    case 5:
      return "power";
    case 6:
      return "sampling";
    default:
      return "other";
  }
}

Engine::Engine() = default;
Engine::~Engine() = default;

EventHandle Engine::schedule_at(util::Seconds t, EventPriority priority, ShardId shard,
                                EventCallback cb) {
  if (t.get() < now_) {
    throw std::invalid_argument("Engine::schedule_at: time " + std::to_string(t.get()) +
                                " is in the past (now=" + std::to_string(now_) + ")");
  }
  return queue_.push(t.get(), priority, std::move(cb), shard);
}

void Engine::set_threads(unsigned n) {
  if (n == 0) n = 1;
  threads_ = n;
  if (n <= 1) {
    pool_.reset();
    return;
  }
  if (!pool_ || pool_->threads() != n) pool_ = std::make_unique<WorkerPool>(n);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  int priority = 0;
  if (observer_ != nullptr || timing_enabled_) priority = queue_.top_key().priority_bits;
  auto [time, callback] = queue_.pop();
  assert(time >= now_);
  now_ = time;
  ++executed_;
  util::set_log_context(time, util::kLogNoShard);
  if (observer_ != nullptr) observer_->on_serial_event(time, priority);
  if (timing_enabled_) {
    const auto t0 = std::chrono::steady_clock::now();
    if (callback) callback();
    const std::uint64_t ns = elapsed_ns(t0);
    const int c = priority_class_index(priority);
    ++timing_.serial_events;
    timing_.serial_ns += ns;
    ++timing_.serial_class_events[static_cast<std::size_t>(c)];
    timing_.serial_class_ns[static_cast<std::size_t>(c)] += ns;
  } else {
    if (callback) callback();
  }
  return true;
}

bool Engine::parallel_step(double bound) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > bound) return false;
  const EventQueue::TopKey key = queue_.top_key();
  if (key.shard == kNoShard) return step();

  const std::size_t n = queue_.pop_batch(batch_cbs_, batch_shards_);
  assert(n >= 1);
  assert(key.time >= now_);
  now_ = key.time;
  executed_ += n;
  if (n == 1) {
    // Single sharded event: pop_batch already released it serial-style.
    util::set_log_context(key.time, util::kLogNoShard);
    if (observer_ != nullptr) observer_->on_serial_event(key.time, key.priority_bits);
    if (timing_enabled_) {
      const auto t0 = std::chrono::steady_clock::now();
      if (batch_cbs_[0]) batch_cbs_[0]();
      const std::uint64_t ns = elapsed_ns(t0);
      const int c = priority_class_index(key.priority_bits);
      ++timing_.serial_events;
      timing_.serial_ns += ns;
      ++timing_.serial_class_events[static_cast<std::size_t>(c)];
      timing_.serial_class_ns[static_cast<std::size_t>(c)] += ns;
    } else {
      if (batch_cbs_[0]) batch_cbs_[0]();
    }
    return true;
  }

  // Group items by shard in first-seen (= pop) order; within a group
  // the pop order is preserved, so same-shard events still execute in
  // the exact serial sequence.
  group_of_.clear();
  n_groups_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] = group_of_.try_emplace(batch_shards_[i], n_groups_);
    if (inserted) {
      if (groups_.size() <= n_groups_) groups_.emplace_back();
      groups_[n_groups_].clear();
      ++n_groups_;
    }
    groups_[it->second].push_back(i);
  }

  ++parallel_batches_;
  batched_events_ += n;
  if (observer_ != nullptr) {
    observer_->on_batch_begin(key.time, key.priority_bits, n, n_groups_);
  }
  queue_.begin_parallel(key.time, key.priority_bits);
  const auto batch_t0 = timing_enabled_ ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point{};
  try {
    pool_->run(n_groups_, [this, time = key.time](std::size_t g) {
      for (const std::size_t item : groups_[g]) {
        queue_.bind_staging(item);
        util::set_log_context(time, batch_shards_[item]);
        if (observer_ != nullptr) observer_->on_batch_item_begin(item);
        try {
          if (batch_cbs_[item]) batch_cbs_[item]();
        } catch (...) {
          if (observer_ != nullptr) observer_->on_batch_item_end();
          util::clear_log_context();
          queue_.unbind_staging();
          throw;
        }
        if (observer_ != nullptr) observer_->on_batch_item_end();
        util::clear_log_context();
        queue_.unbind_staging();
      }
    });
  } catch (...) {
    queue_.cancel_parallel();
    throw;
  }
  if (timing_enabled_) timing_.batch_exec_ns += elapsed_ns(batch_t0);
  const auto barrier_t0 = timing_enabled_ ? std::chrono::steady_clock::now()
                                          : std::chrono::steady_clock::time_point{};
  queue_.end_parallel();
  if (timing_enabled_) timing_.merge_barrier_ns += elapsed_ns(barrier_t0);
  if (observer_ != nullptr) observer_->on_batch_end(key.time);
  return true;
}

void Engine::run() {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (threads_ <= 1) {
    while (!stop_requested_.load(std::memory_order_relaxed) && step()) {
    }
    return;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (!stop_requested_.load(std::memory_order_relaxed) && parallel_step(kInf)) {
  }
}

void Engine::run_until(util::Seconds t_end) {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (threads_ <= 1) {
    while (!stop_requested_.load(std::memory_order_relaxed) && !queue_.empty() &&
           queue_.next_time() <= t_end.get()) {
      step();
    }
  } else {
    while (!stop_requested_.load(std::memory_order_relaxed) && parallel_step(t_end.get())) {
    }
  }
  if (!stop_requested_.load(std::memory_order_relaxed) && now_ < t_end.get()) {
    now_ = t_end.get();
  }
}

}  // namespace heteroplace::sim
