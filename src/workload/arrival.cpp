#include "workload/arrival.hpp"

namespace heteroplace::workload {

std::optional<util::Seconds> PoissonArrivals::next(util::Rng& rng) {
  if (remaining_ == 0) return std::nullopt;
  if (remaining_ > 0) --remaining_;
  t_ += util::Seconds{rng.exponential_mean(mean_gap_.get())};
  return t_;
}

std::optional<util::Seconds> PhasedPoissonArrivals::next(util::Rng& rng) {
  while (phase_ < phases_.size() && emitted_in_phase_ >= phases_[phase_].count) {
    ++phase_;
    emitted_in_phase_ = 0;
  }
  if (phase_ >= phases_.size()) return std::nullopt;
  ++emitted_in_phase_;
  t_ += util::Seconds{rng.exponential_mean(phases_[phase_].mean_gap.get())};
  return t_;
}

std::optional<util::Seconds> UniformArrivals::next(util::Rng& /*rng*/) {
  if (remaining_ == 0) return std::nullopt;
  if (remaining_ > 0) --remaining_;
  t_ += gap_;
  return t_;
}

std::optional<util::Seconds> TraceArrivals::next(util::Rng& /*rng*/) {
  if (idx_ >= times_.size()) return std::nullopt;
  return times_[idx_++];
}

std::vector<util::Seconds> materialize(ArrivalProcess& proc, util::Rng& rng,
                                       std::size_t max_events) {
  std::vector<util::Seconds> out;
  while (out.size() < max_events) {
    auto t = proc.next(rng);
    if (!t) break;
    out.push_back(*t);
  }
  return out;
}

}  // namespace heteroplace::workload
