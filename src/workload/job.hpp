#pragma once

// Long-running jobs.
//
// A job is a fixed amount of CPU work (MHz·seconds) executed inside a VM
// at a controller-assigned speed, capped by the job's maximum speed (one
// processor in the paper's evaluation). Jobs carry a completion-time goal
// relative to submission; their utility is a monotone function of the
// ratio (completion - submit) / goal.

#include <array>
#include <cassert>
#include <string>

#include "cluster/machine_class.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace heteroplace::workload {

struct JobSpec {
  util::JobId id{};
  std::string name;
  util::MhzSeconds work{0.0};     // total CPU work
  util::CpuMhz max_speed{0.0};    // speed cap (1 processor in the paper)
  util::MemMb memory{0.0};        // VM memory reservation
  util::Seconds submit_time{0.0};
  util::Seconds completion_goal{0.0};  // SLA: finish within goal of submit
  double importance{1.0};              // utility weight (service classes)
  /// Machine constraints (required arch / accelerators / min per-core
  /// speed); the default empty set runs anywhere.
  cluster::ConstraintSet constraint{};

  /// Nominal length: execution time at full speed with no waiting.
  [[nodiscard]] util::Seconds nominal_length() const { return work / max_speed; }
};

/// Controller-visible job lifecycle. Mirrors the job VM state but is
/// tracked per job so progress accounting survives VM churn.
enum class JobPhase {
  kPending,    // submitted, never started
  kStarting,   // VM boot in progress
  kRunning,    // accumulating work at the current speed
  kSuspending, // suspension in progress (no progress)
  kSuspended,  // on disk
  kResuming,   // resume in progress (no progress)
  kMigrating,  // migration in progress (no progress)
  kCompleted,  // all work done
};

[[nodiscard]] const char* to_string(JobPhase p);

/// Number of JobPhase values (sizes the per-phase accounting buckets).
inline constexpr int kJobPhaseCount = static_cast<int>(JobPhase::kCompleted) + 1;

/// Runtime job state with explicit progress accounting.
///
/// Progress integrates speed over time lazily: `advance_to(now)` folds the
/// elapsed interval at the current speed into `done`. Speed changes and
/// phase changes must call advance_to first (the mutators here do).
class Job {
 public:
  explicit Job(JobSpec spec) : spec_(std::move(spec)), last_update_(spec_.submit_time) {}

  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] util::JobId id() const { return spec_.id; }
  [[nodiscard]] JobPhase phase() const { return phase_; }
  [[nodiscard]] util::CpuMhz speed() const { return speed_; }
  [[nodiscard]] util::VmId vm() const { return vm_; }
  [[nodiscard]] util::NodeId node() const { return node_; }

  /// Held jobs are detached from the local control plane: the migration
  /// manager sets this while it checkpoints and transfers the job to
  /// another domain, and World::active_jobs hides held jobs so no policy
  /// or executor pass plans (or resumes) them mid-handoff.
  [[nodiscard]] bool held() const { return held_; }
  void set_held(bool held) { held_ = held; }

  void bind_vm(util::VmId vm) { vm_ = vm; }
  void set_node(util::NodeId node) { node_ = node; }

  /// Integrate progress up to `now` at the current speed.
  void advance_to(util::Seconds now);

  /// Change execution speed (advances progress first). Speed must be in
  /// [0, max_speed]; only meaningful while running.
  void set_speed(util::Seconds now, util::CpuMhz speed);

  /// Phase transition (advances progress first). Transitions out of
  /// kRunning zero the speed.
  void set_phase(util::Seconds now, JobPhase phase);

  [[nodiscard]] util::MhzSeconds done() const { return done_; }
  [[nodiscard]] util::MhzSeconds remaining() const { return spec_.work - done_; }
  [[nodiscard]] bool finished() const { return remaining().get() <= 1e-6; }

  /// Time at which the job will finish if it keeps running at `speed`
  /// from `now`. Infinite if speed == 0 and work remains.
  [[nodiscard]] util::Seconds predicted_completion(util::Seconds now, util::CpuMhz speed) const;

  /// Absolute SLA deadline.
  [[nodiscard]] util::Seconds goal_time() const {
    return spec_.submit_time + spec_.completion_goal;
  }

  /// Reinstate progress bookkeeping from a checkpoint image (see
  /// migration::JobCheckpoint). Resets the progress clock to `now` so no
  /// phantom work accrues over the transfer window. Does NOT touch the
  /// SLA accounting (phase buckets / gross / hold): the crash-revert path
  /// reverts `done` on a live job whose wall-time history must survive,
  /// and the migration restore path overwrites accounting explicitly via
  /// restore_accounting().
  void restore_progress(util::MhzSeconds done, int suspends, int migrates, util::Seconds now);

  // --- SLA attribution accounting ------------------------------------------
  // advance_to folds every elapsed interval into the bucket of the phase
  // the job was in, so the buckets partition the job's accounted wall
  // time exactly (the sum telescopes to completion - submit, modulo the
  // cross-domain hold below). Pure bookkeeping: never read by any
  // placement/execution decision, so enabling the SLA ledger cannot
  // perturb simulation results.

  /// Wall time accounted to `phase` so far.
  [[nodiscard]] double phase_seconds(JobPhase phase) const {
    return phase_s_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] const std::array<double, kJobPhaseCount>& phase_seconds_all() const {
    return phase_s_;
  }

  /// Monotone gross work: like `done` but never reverted by
  /// restore_progress, so (gross - done) / max_speed is the full-speed
  /// cost of work redone after a fault revert.
  [[nodiscard]] util::MhzSeconds gross() const { return gross_; }

  /// Wall time spent detached in cross-domain transfers (the hole between
  /// the source job's last accounting update and the destination restore).
  [[nodiscard]] double hold_seconds() const { return hold_s_; }

  /// Time up to which the phase buckets are folded (== last_update_).
  [[nodiscard]] util::Seconds accounted_until() const { return last_update_; }

  /// Overwrite the accounting state wholesale from a checkpoint carried
  /// across domains (migration::restore_job). Call after set_phase.
  void restore_accounting(const std::array<double, kJobPhaseCount>& phase_s,
                          util::MhzSeconds gross, double hold_s);

  /// Set on completion by the experiment driver.
  void mark_completed(util::Seconds t) { completion_time_ = t; }
  [[nodiscard]] util::Seconds completion_time() const { return completion_time_; }

  // Churn counters (metrics).
  void count_suspend() { ++suspend_count_; }
  void count_migrate() { ++migrate_count_; }
  [[nodiscard]] int suspend_count() const { return suspend_count_; }
  [[nodiscard]] int migrate_count() const { return migrate_count_; }

 private:
  JobSpec spec_;
  JobPhase phase_{JobPhase::kPending};
  util::MhzSeconds done_{0.0};
  util::CpuMhz speed_{0.0};
  util::Seconds last_update_;
  util::VmId vm_{};
  util::NodeId node_{};
  util::Seconds completion_time_{-1.0};
  int suspend_count_{0};
  int migrate_count_{0};
  bool held_{false};
  std::array<double, kJobPhaseCount> phase_s_{};
  util::MhzSeconds gross_{0.0};
  double hold_s_{0.0};
};

}  // namespace heteroplace::workload
