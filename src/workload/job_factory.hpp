#pragma once

// Batch job stream construction: combines an arrival process with a job
// template (or a randomized size distribution) to produce the JobSpec
// stream submitted to the system.

#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/job.hpp"

namespace heteroplace::workload {

/// Template for generated jobs; `work_cv` > 0 draws work from a lognormal
/// with the given coefficient of variation around `work` (0 = identical
/// jobs, as in the paper's evaluation).
struct JobTemplate {
  std::string name_prefix{"job"};
  util::MhzSeconds work{3.0e7};
  double work_cv{0.0};
  util::CpuMhz max_speed{3000.0};
  util::MemMb memory{1300.0};
  /// Completion goal as a multiple of the job's nominal length.
  double goal_stretch{2.0};
  double importance{1.0};
  /// Machine constraints stamped onto every generated job.
  cluster::ConstraintSet constraint{};
};

/// Generate the full job stream: one JobSpec per arrival. Ids are assigned
/// sequentially starting at `first_id`.
[[nodiscard]] std::vector<JobSpec> generate_jobs(ArrivalProcess& arrivals, const JobTemplate& tmpl,
                                                 util::Rng& rng,
                                                 util::JobId::underlying_type first_id = 0);

}  // namespace heteroplace::workload
