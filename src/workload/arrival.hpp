#pragma once

// Arrival processes for job submission.
//
// The paper's evaluation submits 800 identical jobs with exponentially
// distributed inter-arrival times (mean 260 s) and "slightly decreases"
// the submission rate near the end — modeled here as a phased Poisson
// process (each phase has its own mean inter-arrival time).

#include <memory>
#include <optional>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace heteroplace::workload {

/// Abstract arrival process: a stream of absolute arrival times.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next arrival strictly after the previous one; nullopt when exhausted.
  [[nodiscard]] virtual std::optional<util::Seconds> next(util::Rng& rng) = 0;
};

/// Poisson arrivals: exponential inter-arrival with a fixed mean, starting
/// at `start`, emitting at most `count` arrivals (count < 0 = unbounded).
class PoissonArrivals final : public ArrivalProcess {
 public:
  PoissonArrivals(util::Seconds start, util::Seconds mean_gap, long count)
      : t_(start), mean_gap_(mean_gap), remaining_(count) {}

  [[nodiscard]] std::optional<util::Seconds> next(util::Rng& rng) override;

 private:
  util::Seconds t_;
  util::Seconds mean_gap_;
  long remaining_;
};

/// Piecewise Poisson: a sequence of phases, each with its own mean gap and
/// count. Phases run back to back.
class PhasedPoissonArrivals final : public ArrivalProcess {
 public:
  struct Phase {
    util::Seconds mean_gap;
    long count;  // arrivals in this phase
  };

  PhasedPoissonArrivals(util::Seconds start, std::vector<Phase> phases)
      : t_(start), phases_(std::move(phases)) {}

  [[nodiscard]] std::optional<util::Seconds> next(util::Rng& rng) override;

 private:
  util::Seconds t_;
  std::vector<Phase> phases_;
  std::size_t phase_{0};
  long emitted_in_phase_{0};
};

/// Deterministic arrivals at fixed intervals (useful in tests).
class UniformArrivals final : public ArrivalProcess {
 public:
  UniformArrivals(util::Seconds start, util::Seconds gap, long count)
      : t_(start), gap_(gap), remaining_(count) {}

  [[nodiscard]] std::optional<util::Seconds> next(util::Rng& rng) override;

 private:
  util::Seconds t_;
  util::Seconds gap_;
  long remaining_;
};

/// Pre-computed arrival times (trace playback).
class TraceArrivals final : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<util::Seconds> times) : times_(std::move(times)) {}
  [[nodiscard]] std::optional<util::Seconds> next(util::Rng& rng) override;

 private:
  std::vector<util::Seconds> times_;
  std::size_t idx_{0};
};

/// Materialize a whole process into a sorted vector of times.
[[nodiscard]] std::vector<util::Seconds> materialize(ArrivalProcess& proc, util::Rng& rng,
                                                     std::size_t max_events = 1'000'000);

}  // namespace heteroplace::workload
