#include "workload/job_factory.hpp"

#include <cmath>

namespace heteroplace::workload {

std::vector<JobSpec> generate_jobs(ArrivalProcess& arrivals, const JobTemplate& tmpl,
                                   util::Rng& rng, util::JobId::underlying_type first_id) {
  std::vector<JobSpec> jobs;
  util::JobId::underlying_type next_id = first_id;
  while (auto t = arrivals.next(rng)) {
    JobSpec spec;
    spec.id = util::JobId{next_id++};
    spec.name = tmpl.name_prefix + "-" + std::to_string(spec.id.get());
    if (tmpl.work_cv > 0.0) {
      // Lognormal parameterized by mean = work, cv = work_cv.
      const double cv2 = tmpl.work_cv * tmpl.work_cv;
      const double sigma2 = std::log(1.0 + cv2);
      const double mu = std::log(tmpl.work.get()) - 0.5 * sigma2;
      spec.work = util::MhzSeconds{rng.lognormal(mu, std::sqrt(sigma2))};
    } else {
      spec.work = tmpl.work;
    }
    spec.max_speed = tmpl.max_speed;
    spec.memory = tmpl.memory;
    spec.submit_time = *t;
    spec.completion_goal = util::Seconds{spec.nominal_length().get() * tmpl.goal_stretch};
    spec.importance = tmpl.importance;
    spec.constraint = tmpl.constraint;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace heteroplace::workload
