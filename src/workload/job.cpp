#include "workload/job.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace heteroplace::workload {

const char* to_string(JobPhase p) {
  switch (p) {
    case JobPhase::kPending:
      return "pending";
    case JobPhase::kStarting:
      return "starting";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kSuspending:
      return "suspending";
    case JobPhase::kSuspended:
      return "suspended";
    case JobPhase::kResuming:
      return "resuming";
    case JobPhase::kMigrating:
      return "migrating";
    case JobPhase::kCompleted:
      return "completed";
  }
  return "?";
}

void Job::advance_to(util::Seconds now) {
  if (now.get() < last_update_.get()) {
    throw std::logic_error("Job::advance_to: time went backwards");
  }
  const util::Seconds dt = now - last_update_;
  phase_s_[static_cast<std::size_t>(phase_)] += dt.get();
  if (phase_ == JobPhase::kRunning && speed_.get() > 0.0) {
    done_ += speed_ * dt;
    gross_ += speed_ * dt;
    if (done_.get() > spec_.work.get()) done_ = spec_.work;  // clamp FP overshoot
  }
  last_update_ = now;
}

void Job::restore_accounting(const std::array<double, kJobPhaseCount>& phase_s,
                             util::MhzSeconds gross, double hold_s) {
  phase_s_ = phase_s;
  gross_ = gross;
  hold_s_ = hold_s;
}

void Job::set_speed(util::Seconds now, util::CpuMhz speed) {
  if (speed.get() < -1e-9 || speed.get() > spec_.max_speed.get() + 1e-6) {
    throw std::invalid_argument("Job::set_speed: speed outside [0, max_speed]");
  }
  advance_to(now);
  speed_ = util::CpuMhz{std::clamp(speed.get(), 0.0, spec_.max_speed.get())};
}

void Job::set_phase(util::Seconds now, JobPhase phase) {
  advance_to(now);
  phase_ = phase;
  if (phase != JobPhase::kRunning) speed_ = util::CpuMhz{0.0};
}

void Job::restore_progress(util::MhzSeconds done, int suspends, int migrates, util::Seconds now) {
  if (done.get() < 0.0 || done.get() > spec_.work.get() + 1e-6) {
    throw std::invalid_argument("Job::restore_progress: done outside [0, work]");
  }
  done_ = util::MhzSeconds{std::min(done.get(), spec_.work.get())};
  suspend_count_ = suspends;
  migrate_count_ = migrates;
  last_update_ = now;
}

util::Seconds Job::predicted_completion(util::Seconds now, util::CpuMhz speed) const {
  const util::MhzSeconds rem = remaining();
  if (rem.get() <= 0.0) return now;
  if (speed.get() <= 0.0) return util::Seconds{std::numeric_limits<double>::infinity()};
  return now + rem / speed;
}

}  // namespace heteroplace::workload
