#include "workload/transactional.hpp"

#include <algorithm>
#include <stdexcept>

namespace heteroplace::workload {

void DemandTrace::add(util::Seconds from, double rate) {
  if (rate < 0.0) throw std::invalid_argument("DemandTrace: negative rate");
  if (!points_.empty() && from.get() < points_.back().from.get()) {
    throw std::invalid_argument("DemandTrace: breakpoints must be nondecreasing in time");
  }
  points_.push_back({from, rate});
}

double DemandTrace::rate_at(util::Seconds t) const {
  if (points_.empty()) return 0.0;
  if (t.get() <= points_.front().from.get()) return points_.front().rate;
  // Last point with from <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t.get(),
      [](double lhs, const Point& p) { return lhs < p.from.get(); });
  return std::prev(it)->rate;
}

std::vector<util::Seconds> DemandTrace::change_times() const {
  std::vector<util::Seconds> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.from);
  return out;
}

DemandTrace DemandTrace::scaled(double factor) const {
  if (factor < 0.0) throw std::invalid_argument("DemandTrace::scaled: negative factor");
  DemandTrace out;
  out.points_.reserve(points_.size());
  for (const auto& p : points_) out.points_.push_back({p.from, p.rate * factor});
  return out;
}

double DemandTrace::peak_rate() const {
  double peak = 0.0;
  for (const auto& p : points_) peak = std::max(peak, p.rate);
  return peak;
}

}  // namespace heteroplace::workload
