#include "workload/transactional.hpp"

#include <algorithm>
#include <stdexcept>

namespace heteroplace::workload {

void DemandTrace::materialize() {
  auto owned = std::make_shared<std::vector<Point>>();
  if (points_) {
    owned->reserve(points_->size());
    for (const Point& p : *points_) owned->push_back({p.from, p.rate * scale_});
  }
  points_ = std::move(owned);
  scale_ = 1.0;
}

void DemandTrace::add(util::Seconds from, double rate) {
  if (rate < 0.0) throw std::invalid_argument("DemandTrace: negative rate");
  if (points_ && !points_->empty() && from.get() < points_->back().from.get()) {
    throw std::invalid_argument("DemandTrace: breakpoints must be nondecreasing in time");
  }
  if (!points_ || points_.use_count() > 1 || scale_ != 1.0) materialize();
  points_->push_back({from, rate});
}

double DemandTrace::rate_at(util::Seconds t) const {
  if (empty()) return 0.0;
  const std::vector<Point>& pts = *points_;
  if (t.get() <= pts.front().from.get()) return pts.front().rate * scale_;
  // Last point with from <= t.
  auto it = std::upper_bound(
      pts.begin(), pts.end(), t.get(),
      [](double lhs, const Point& p) { return lhs < p.from.get(); });
  return std::prev(it)->rate * scale_;
}

std::vector<util::Seconds> DemandTrace::change_times() const {
  std::vector<util::Seconds> out;
  if (!points_) return out;
  out.reserve(points_->size());
  for (const auto& p : *points_) out.push_back(p.from);
  return out;
}

DemandTrace DemandTrace::scaled(double factor) const {
  if (factor < 0.0) throw std::invalid_argument("DemandTrace::scaled: negative factor");
  DemandTrace out;
  if (!points_) return out;
  if (scale_ != 1.0) {
    out.points_ = points_;
    out.scale_ = scale_;
    out.materialize();
  } else {
    out.points_ = points_;  // O(1): alias the breakpoints
  }
  out.scale_ = factor;
  return out;
}

double DemandTrace::peak_rate() const {
  if (!points_) return 0.0;
  double peak = 0.0;
  // max(r·s) == max(r)·s for s >= 0 — and the same breakpoint attains
  // both, so the product is the identical double either way.
  for (const auto& p : *points_) peak = std::max(peak, p.rate);
  return peak * scale_;
}

}  // namespace heteroplace::workload
