#pragma once

// Transactional (clustered web) applications.
//
// A transactional app serves an open stream of requests at rate λ(t)
// (requests/s), each consuming a mean service demand d (MHz·s of CPU).
// It runs as a cluster of web-instance VMs — at most one instance per
// node — and its response time depends on the *total* CPU the controller
// grants across instances. SLA: mean response time below a goal T.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/machine_class.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace heteroplace::workload {

/// Piecewise-constant request-rate trace λ(t). Points are (from-time,
/// rate); the rate holds until the next point. Rate before the first
/// point is the first point's rate (so a single point means "constant").
///
/// Scaled views share their breakpoints: scaled() on an unscaled trace
/// is O(1) — it aliases the point vector and records the factor, and
/// rate_at applies it on read. The federation re-splits every app's
/// demand across domains whenever a weight changes; with week-long
/// traces (thousands of breakpoints) the per-resplit deep copies were
/// the dominant cost of a weight event. Rates read bit-identically to a
/// materialized copy: lookup returns stored_rate * factor, exactly the
/// product the eager copy stored (and factor 1 is exact by IEEE-754).
class DemandTrace {
 public:
  DemandTrace() = default;
  /// Constant-rate convenience.
  explicit DemandTrace(double rate) { add(util::Seconds{0.0}, rate); }

  /// Add a (time, rate) breakpoint; times must be nondecreasing.
  /// Copy-on-write: a trace sharing breakpoints with scaled siblings
  /// materializes its own copy first.
  void add(util::Seconds from, double rate);

  [[nodiscard]] double rate_at(util::Seconds t) const;
  [[nodiscard]] bool empty() const { return !points_ || points_->empty(); }

  /// Times at which the rate changes (for scheduling re-evaluation).
  [[nodiscard]] std::vector<util::Seconds> change_times() const;

  /// Peak rate over the whole trace.
  [[nodiscard]] double peak_rate() const;

  /// View of this trace with every rate multiplied by `factor` (>= 0).
  /// The federation layer uses this to split one offered-load stream
  /// across controller domains; factor 1 reproduces the trace exactly.
  /// O(1) on an unscaled trace. Rescaling an already-scaled view first
  /// folds the old factor into a materialized copy, so the arithmetic
  /// stays (r·s1)·s2 — bit-identical to scaling an eager copy — rather
  /// than r·(s1·s2).
  [[nodiscard]] DemandTrace scaled(double factor) const;

 private:
  struct Point {
    util::Seconds from;
    double rate;
  };
  /// Immutable once shared (use_count > 1): mutation goes through
  /// materialize() so scaled siblings never observe a change.
  std::shared_ptr<std::vector<Point>> points_;
  double scale_{1.0};

  /// Replace points_ with an owned copy holding rate * scale_, reset
  /// scale_ to 1.
  void materialize();
};

/// Static description of a transactional application and its SLA.
struct TxAppSpec {
  util::AppId id{};
  std::string name;

  // --- SLA and performance model -----------------------------------------
  util::Seconds rt_goal{1.0};        // T: mean response-time goal
  double service_demand{600.0};      // d: MHz·s of CPU per request
  double max_utilization{0.9};       // flow-control cap on utilization
  double throughput_exponent{1.0};   // κ: utility penalty for shed load
  double utility_cap{0.9};           // u_max: best achievable utility
  double importance{1.0};            // utility weight (service classes)

  // --- instance sizing -----------------------------------------------------
  util::MemMb instance_memory{1024.0};
  int min_instances{1};
  int max_instances{64};

  /// CPU the app can productively use per instance (an instance cannot
  /// exceed its node's capacity; this caps it lower if desired).
  util::CpuMhz max_cpu_per_instance{1.0e9};

  /// Machine constraints applied to every web instance of this app.
  cluster::ConstraintSet constraint{};
};

/// A transactional app: spec plus its offered-load trace.
class TxApp {
 public:
  TxApp(TxAppSpec spec, DemandTrace trace) : spec_(std::move(spec)), trace_(std::move(trace)) {}

  [[nodiscard]] const TxAppSpec& spec() const { return spec_; }
  [[nodiscard]] util::AppId id() const { return spec_.id; }
  [[nodiscard]] const DemandTrace& trace() const { return trace_; }
  /// Replace the offered-load trace (federation demand re-splits).
  void set_trace(DemandTrace trace) { trace_ = std::move(trace); }
  [[nodiscard]] double arrival_rate(util::Seconds t) const { return trace_.rate_at(t); }

  /// Offered CPU load λ(t)·d — the capacity that would be consumed if all
  /// requests were admitted with zero queueing slack.
  [[nodiscard]] util::CpuMhz offered_load(util::Seconds t) const {
    return util::CpuMhz{arrival_rate(t) * spec_.service_demand};
  }

 private:
  TxAppSpec spec_;
  DemandTrace trace_;
};

}  // namespace heteroplace::workload
