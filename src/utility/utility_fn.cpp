#include "utility/utility_fn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/math.hpp"

namespace heteroplace::utility {

double UtilityFunction::inverse(double u, double x_lo, double x_hi) const {
  return util::invert_decreasing([this](double x) { return value(x); }, u, x_lo, x_hi);
}

PiecewiseLinearUtility::PiecewiseLinearUtility(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("PiecewiseLinearUtility: no points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first <= points_[i - 1].first) {
      throw std::invalid_argument("PiecewiseLinearUtility: x must be strictly increasing");
    }
    if (points_[i].second > points_[i - 1].second) {
      throw std::invalid_argument("PiecewiseLinearUtility: u must be non-increasing");
    }
  }
}

double PiecewiseLinearUtility::value(double x) const {
  if (points_.size() == 1) return points_.front().second;
  if (x <= points_.front().first) {
    // Extrapolate with the first segment's slope, but never above the
    // first utility (utility saturates at its best value).
    return points_.front().second;
  }
  if (x >= points_.back().first) {
    const auto& a = points_[points_.size() - 2];
    const auto& b = points_.back();
    return util::lerp_at(a.first, a.second, b.first, b.second, x);
  }
  auto it = std::upper_bound(points_.begin(), points_.end(), x,
                             [](double lhs, const Point& p) { return lhs < p.first; });
  const auto& b = *it;
  const auto& a = *std::prev(it);
  return util::lerp_at(a.first, a.second, b.first, b.second, x);
}

double PiecewiseLinearUtility::inverse(double u, double x_lo, double x_hi) const {
  if (points_.size() == 1) return u <= points_.front().second ? x_hi : x_lo;
  if (u > points_.front().second) return x_lo;  // unreachable utility
  if (u == points_.front().second) {
    // Plateau: the largest x still achieving the maximum utility.
    return std::clamp(points_.front().first, x_lo, x_hi);
  }
  // Walk segments until utility drops below u.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    if (u >= b.second) {
      if (a.second == b.second) return std::clamp(b.first, x_lo, x_hi);
      const double x = a.first + (a.second - u) / (a.second - b.second) * (b.first - a.first);
      return std::clamp(x, x_lo, x_hi);
    }
  }
  // Beyond the last point: extrapolate the final slope.
  const auto& a = points_[points_.size() - 2];
  const auto& b = points_.back();
  const double slope = (b.second - a.second) / (b.first - a.first);
  if (slope >= 0.0) return x_hi;  // flat tail: u unreachable below
  const double x = b.first + (u - b.second) / slope;
  return std::clamp(x, x_lo, x_hi);
}

double PiecewiseLinearUtility::max_utility() const { return points_.front().second; }

LinearUtility::LinearUtility(double u0, double slope) : u0_(u0), slope_(slope) {
  if (slope < 0.0) throw std::invalid_argument("LinearUtility: negative slope");
}

double LinearUtility::value(double x) const { return u0_ - slope_ * x; }

double LinearUtility::inverse(double u, double x_lo, double x_hi) const {
  if (slope_ == 0.0) return u <= u0_ ? x_hi : x_lo;
  return std::clamp((u0_ - u) / slope_, x_lo, x_hi);
}

SigmoidUtility::SigmoidUtility(double lo, double hi, double mid, double steepness)
    : lo_(lo), hi_(hi), mid_(mid), k_(steepness) {
  if (hi <= lo) throw std::invalid_argument("SigmoidUtility: hi <= lo");
  if (steepness <= 0.0) throw std::invalid_argument("SigmoidUtility: steepness <= 0");
}

double SigmoidUtility::value(double x) const {
  return lo_ + (hi_ - lo_) / (1.0 + std::exp(k_ * (x - mid_)));
}

double SigmoidUtility::inverse(double u, double x_lo, double x_hi) const {
  if (u >= value(x_lo)) return x_lo;
  if (u <= value(x_hi)) return x_hi;
  const double f = (hi_ - lo_) / (u - lo_) - 1.0;  // = exp(k (x - mid))
  return std::clamp(mid_ + std::log(f) / k_, x_lo, x_hi);
}

ExponentialUtility::ExponentialUtility(double u0, double rate) : u0_(u0), rate_(rate) {
  if (u0 <= 0.0) throw std::invalid_argument("ExponentialUtility: u0 <= 0");
  if (rate < 0.0) throw std::invalid_argument("ExponentialUtility: negative rate");
}

double ExponentialUtility::value(double x) const { return u0_ * std::exp(-rate_ * x); }

double ExponentialUtility::inverse(double u, double x_lo, double x_hi) const {
  if (rate_ == 0.0) return u <= u0_ ? x_hi : x_lo;
  if (u <= 0.0) return x_hi;
  return std::clamp(-std::log(u / u0_) / rate_, x_lo, x_hi);
}

std::shared_ptr<const UtilityFunction> default_job_utility() {
  static const auto fn = std::make_shared<PiecewiseLinearUtility>(
      std::vector<PiecewiseLinearUtility::Point>{{0.5, 1.0}, {1.0, 0.4}, {1.5, 0.0}});
  return fn;
}

std::shared_ptr<const UtilityFunction> make_utility(const std::string& name) {
  if (name == "piecewise") return default_job_utility();
  if (name == "linear") return std::make_shared<LinearUtility>(1.3, 0.9);
  if (name == "sigmoid") return std::make_shared<SigmoidUtility>(-0.5, 1.0, 1.0, 4.0);
  if (name == "exponential") return std::make_shared<ExponentialUtility>(1.5, 0.9);
  throw std::invalid_argument("make_utility: unknown shape '" + name + "'");
}

}  // namespace heteroplace::utility
