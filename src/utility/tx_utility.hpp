#pragma once

// Transactional utility model.
//
// Composes the queueing performance model with a response-time utility:
//   u_raw = (T − RT) / T          (1 at RT→0, 0 at the goal, <0 beyond)
//   u     = min(u_raw, u_cap) · τ^κ  for u_raw > 0,  else u_raw
// where τ is the throughput ratio after flow control and κ >= 0 penalizes
// shed load. The result is monotone non-decreasing in allocated CPU, so a
// unique inverse (CPU needed for a target utility) exists and is computed
// by bisection.

#include "perfmodel/tx_model.hpp"
#include "util/units.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::utility {

class TxUtilityModel {
 public:
  TxUtilityModel() = default;

  /// Utility of app `spec` at arrival rate `lambda` with `alloc` CPU.
  [[nodiscard]] double utility(const workload::TxAppSpec& spec, double lambda,
                               util::CpuMhz alloc) const;

  /// Minimum CPU achieving utility `u` (clamped to [0, demand_max]).
  [[nodiscard]] util::CpuMhz alloc_for_utility(const workload::TxAppSpec& spec, double lambda,
                                               double u) const;

  /// Best achievable utility (the cap, modulated by importance).
  [[nodiscard]] double max_utility(const workload::TxAppSpec& spec) const;

  /// CPU demand to reach maximum utility — the "transactional demand"
  /// series of the paper's Figure 2.
  [[nodiscard]] util::CpuMhz demand_for_max_utility(const workload::TxAppSpec& spec,
                                                    double lambda) const;

 private:
  /// Utility without the importance weight.
  [[nodiscard]] double raw_utility(const workload::TxAppSpec& spec, double lambda,
                                   util::CpuMhz alloc) const;
};

}  // namespace heteroplace::utility
