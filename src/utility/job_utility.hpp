#pragma once

// Job utility model: maps (predicted) completion times to utility and
// back. Implements the paper's "hypothetical utility" for jobs — the
// utility a job would achieve if, from now on, it ran at a hypothetical
// speed ω — and the inverse (speed needed for a target utility), which is
// what the equalizer consumes.

#include <memory>

#include "util/units.hpp"
#include "utility/utility_fn.hpp"
#include "workload/job.hpp"

namespace heteroplace::utility {

class JobUtilityModel {
 public:
  explicit JobUtilityModel(std::shared_ptr<const UtilityFunction> fn = default_job_utility())
      : fn_(std::move(fn)) {}

  [[nodiscard]] const UtilityFunction& fn() const { return *fn_; }

  /// Utility achieved if the job completes at absolute time `completion`.
  /// Used both for actual utility at completion and for predictions.
  [[nodiscard]] double utility_at_completion(const workload::JobSpec& spec,
                                             util::Seconds completion) const;

  /// Hypothetical utility at time `now` under hypothetical speed `speed`
  /// (the job's remaining work would finish at now + remaining/speed).
  /// speed <= 0 with remaining work yields the utility limit at infinite
  /// completion (very negative for decreasing-to-negative shapes).
  [[nodiscard]] double hypothetical_utility(const workload::Job& job, util::Seconds now,
                                            util::CpuMhz speed) const;

  /// Inverse: the minimum speed that achieves utility `u` from `now`,
  /// clamped to [0, max_speed]. If even max_speed cannot reach `u`,
  /// returns max_speed; if `u` is achieved with arbitrarily small speed
  /// (never, for ratios that keep growing) returns the computed speed.
  [[nodiscard]] util::CpuMhz speed_for_utility(const workload::Job& job, util::Seconds now,
                                               double u) const;

  /// Best achievable utility from `now` (i.e., at max speed). Decays as
  /// the job waits — this is what makes queued jobs progressively more
  /// "urgent" to the equalizer.
  [[nodiscard]] double max_achievable_utility(const workload::Job& job, util::Seconds now) const;

  /// CPU demand for maximum utility, as reported in the paper's Figure 2:
  /// the speed that reaches the utility plateau if reachable, otherwise
  /// max_speed.
  [[nodiscard]] util::CpuMhz demand_for_max_utility(const workload::Job& job,
                                                    util::Seconds now) const;

 private:
  std::shared_ptr<const UtilityFunction> fn_;
};

}  // namespace heteroplace::utility
