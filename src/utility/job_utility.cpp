#include "utility/job_utility.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace heteroplace::utility {

namespace {
/// Relative completion ratio x = (completion − submit) / goal.
double completion_ratio(const workload::JobSpec& spec, util::Seconds completion) {
  const double goal = spec.completion_goal.get();
  if (goal <= 0.0) return std::numeric_limits<double>::infinity();
  return (completion.get() - spec.submit_time.get()) / goal;
}
}  // namespace

// Importance semantics: a consumer's *equalized* utility is raw/importance,
// so under contention the equalizer drives raw utilities toward
// importance × u* — a class with twice the importance sustains twice the
// (positive) utility level. (A multiplicative weight would invert the
// priority: equalizing w·u forces the important class to a LOWER raw u.)

double JobUtilityModel::utility_at_completion(const workload::JobSpec& spec,
                                              util::Seconds completion) const {
  const double w = spec.importance > 0.0 ? spec.importance : 1.0;
  const double x = completion_ratio(spec, completion);
  if (!std::isfinite(x)) {
    // Push the utility to the function's limit at very large ratios.
    return fn_->value(1e9) / w;
  }
  return fn_->value(x) / w;
}

double JobUtilityModel::hypothetical_utility(const workload::Job& job, util::Seconds now,
                                             util::CpuMhz speed) const {
  const double w = job.spec().importance > 0.0 ? job.spec().importance : 1.0;
  if (job.finished()) return utility_at_completion(job.spec(), now);
  const util::Seconds completion = job.predicted_completion(now, speed);
  if (!std::isfinite(completion.get())) return fn_->value(1e9) / w;
  return utility_at_completion(job.spec(), completion);
}

util::CpuMhz JobUtilityModel::speed_for_utility(const workload::Job& job, util::Seconds now,
                                                double u) const {
  const auto& spec = job.spec();
  if (job.finished()) return util::CpuMhz{0.0};
  const double importance = spec.importance > 0.0 ? spec.importance : 1.0;
  // Largest completion ratio that still yields (weighted) utility u.
  const double x = fn_->inverse(u * importance);
  const double completion = spec.submit_time.get() + x * spec.completion_goal.get();
  const double horizon = completion - now.get();
  if (horizon <= 0.0) {
    // Even instant completion misses the target utility: demand the max.
    return spec.max_speed;
  }
  const double speed = job.remaining().get() / horizon;
  return util::CpuMhz{std::clamp(speed, 0.0, spec.max_speed.get())};
}

double JobUtilityModel::max_achievable_utility(const workload::Job& job,
                                               util::Seconds now) const {
  return hypothetical_utility(job, now, job.spec().max_speed);
}

util::CpuMhz JobUtilityModel::demand_for_max_utility(const workload::Job& job,
                                                     util::Seconds now) const {
  if (job.finished()) return util::CpuMhz{0.0};
  const double w = job.spec().importance > 0.0 ? job.spec().importance : 1.0;
  // Speed that reaches the utility plateau (fn's max), else max speed.
  const double u_plateau = fn_->max_utility() / w;
  return speed_for_utility(job, now, u_plateau);
}

}  // namespace heteroplace::utility
