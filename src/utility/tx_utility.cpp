#include "utility/tx_utility.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace heteroplace::utility {

double TxUtilityModel::raw_utility(const workload::TxAppSpec& spec, double lambda,
                                   util::CpuMhz alloc) const {
  if (lambda <= 0.0) {
    // No load: the app is maximally satisfied regardless of allocation.
    return spec.utility_cap;
  }
  if (alloc.get() <= 0.0) {
    // Nothing allocated but load offered: strongly unsatisfied. Use a
    // large negative value that still orders below any finite-RT utility.
    return -1e3;
  }
  const auto perf =
      perfmodel::evaluate_tx(lambda, spec.service_demand, alloc, spec.max_utilization);
  const double t_goal = spec.rt_goal.get();
  double u = (t_goal - perf.response_time.get()) / t_goal;
  u = std::min(u, spec.utility_cap);
  if (u > 0.0 && perf.throughput_ratio < 1.0) {
    u *= std::pow(perf.throughput_ratio, spec.throughput_exponent);
  }
  return u;
}

// Importance semantics (matches JobUtilityModel): the equalized quantity
// is raw/importance, so more-important apps sustain proportionally higher
// raw utility under contention.

double TxUtilityModel::utility(const workload::TxAppSpec& spec, double lambda,
                               util::CpuMhz alloc) const {
  const double w = spec.importance > 0.0 ? spec.importance : 1.0;
  return raw_utility(spec, lambda, alloc) / w;
}

double TxUtilityModel::max_utility(const workload::TxAppSpec& spec) const {
  const double w = spec.importance > 0.0 ? spec.importance : 1.0;
  return spec.utility_cap / w;
}

util::CpuMhz TxUtilityModel::demand_for_max_utility(const workload::TxAppSpec& spec,
                                                    double lambda) const {
  if (lambda <= 0.0) return util::CpuMhz{0.0};
  // Unsaturated closed form: u_cap corresponds to RT = T(1 − u_cap).
  const double rt_floor = spec.rt_goal.get() * (1.0 - spec.utility_cap);
  const auto cap = perfmodel::capacity_for_response_time(lambda, spec.service_demand,
                                                         util::Seconds{rt_floor});
  return cap;
}

util::CpuMhz TxUtilityModel::alloc_for_utility(const workload::TxAppSpec& spec, double lambda,
                                               double u) const {
  if (lambda <= 0.0) return util::CpuMhz{0.0};
  const util::CpuMhz hi = demand_for_max_utility(spec, lambda);
  if (u >= max_utility(spec)) return hi;
  const double x = util::invert_increasing(
      [&](double w) { return utility(spec, lambda, util::CpuMhz{w}); }, u, 0.0, hi.get(),
      /*x_tol=*/1e-6 * std::max(1.0, hi.get()));
  return util::CpuMhz{std::clamp(x, 0.0, hi.get())};
}

}  // namespace heteroplace::utility
