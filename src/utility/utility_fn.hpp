#pragma once

// Monotone continuous utility functions.
//
// The paper represents the satisfaction of every workload as a monotonic,
// continuous function of a *relative performance* measure x — for jobs,
// x = (completion − submit) / goal; lower x is better, so utility is
// non-increasing in x. A shared inverse lets the equalizer translate a
// utility level back into a performance requirement.

#include <memory>
#include <utility>
#include <vector>

namespace heteroplace::utility {

/// Monotone non-increasing, continuous utility of a relative performance
/// ratio x >= 0 (x = 1 means "exactly met the goal").
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Utility at ratio x. Must be monotone non-increasing and continuous.
  [[nodiscard]] virtual double value(double x) const = 0;

  /// Largest ratio x achieving utility >= u, i.e. the generalized inverse
  /// x(u) = sup{x : value(x) >= u}. For u above max utility returns
  /// `x_lo`; for u below the utility at `x_hi` returns `x_hi`.
  /// Subclasses with closed forms override; the default bisects.
  [[nodiscard]] virtual double inverse(double u, double x_lo = 0.0, double x_hi = 1e9) const;

  /// Utility of a perfectly performing workload (x -> 0).
  [[nodiscard]] virtual double max_utility() const { return value(0.0); }
};

/// Piecewise-linear utility through given (x, u) breakpoints, extrapolated
/// with the first/last segment slopes (flat if a single point). This is
/// the workhorse shape: e.g. {(0.5, 1.0), (1.0, 0.4), (1.5, 0.0)} —
/// full utility when finishing within half the goal, 0.4 exactly on goal,
/// 0 at 1.5× goal, increasingly negative beyond.
class PiecewiseLinearUtility final : public UtilityFunction {
 public:
  using Point = std::pair<double, double>;  // (x, u)

  /// Points must be strictly increasing in x and non-increasing in u;
  /// throws std::invalid_argument otherwise.
  explicit PiecewiseLinearUtility(std::vector<Point> points);

  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double inverse(double u, double x_lo = 0.0, double x_hi = 1e9) const override;
  [[nodiscard]] double max_utility() const override;

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

/// Linear utility u = u0 − slope·x (slope >= 0).
class LinearUtility final : public UtilityFunction {
 public:
  LinearUtility(double u0, double slope);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double inverse(double u, double x_lo = 0.0, double x_hi = 1e9) const override;

 private:
  double u0_;
  double slope_;
};

/// Smooth sigmoid: u = lo + (hi−lo) / (1 + exp(k·(x − mid))), decreasing
/// in x for k > 0. Models "soft deadline" satisfaction.
class SigmoidUtility final : public UtilityFunction {
 public:
  SigmoidUtility(double lo, double hi, double mid, double steepness);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double inverse(double u, double x_lo = 0.0, double x_hi = 1e9) const override;
  [[nodiscard]] double max_utility() const override { return value(0.0); }

 private:
  double lo_, hi_, mid_, k_;
};

/// Exponential decay: u = u0·exp(−rate·x), rate >= 0.
class ExponentialUtility final : public UtilityFunction {
 public:
  ExponentialUtility(double u0, double rate);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double inverse(double u, double x_lo = 0.0, double x_hi = 1e9) const override;

 private:
  double u0_, rate_;
};

/// The default job utility shape used across examples and benches.
[[nodiscard]] std::shared_ptr<const UtilityFunction> default_job_utility();

/// Named factory for benches/config: "piecewise", "linear", "sigmoid",
/// "exponential". Throws std::invalid_argument for unknown names.
[[nodiscard]] std::shared_ptr<const UtilityFunction> make_utility(const std::string& name);

}  // namespace heteroplace::utility
