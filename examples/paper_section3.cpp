// The paper's Section-3 experiment at full scale: 25 nodes × 4 × 3 GHz,
// 800 identical batch jobs (exponential inter-arrival, mean 260 s)
// collocated with a constant transactional workload, 600 s control cycle.
//
// Writes the complete Figure-1/Figure-2 series to CSV and prints the
// run summary plus a phase narrative.
//
// (Until PR 10 this file was named heterogeneous_datacenter.cpp — a
// legacy of the paper's "heterogeneous workloads" phrasing. The cluster
// here is homogeneous hardware; for machine-class heterogeneity see
// examples/hetero_datacenter.cpp.)
//
// Run:  ./build/paper_section3 [--out=DIR] [--seed=N]
//       [--policy=utility-driven|static-partition|proportional-equal|...]

#include <filesystem>
#include <iostream>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  scenario::Scenario s = scenario::section3_scenario();
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  scenario::ExperimentOptions options;
  options.policy = scenario::policy_from_string(cfg.get_string("policy", "utility-driven"));

  std::cout << "Heterogeneous datacenter (paper Section 3): " << s.cluster.nodes
            << " nodes x " << s.cluster.cpu_per_node_mhz / 1000.0 << " GHz total/node, "
            << s.jobs.count << " jobs, mean inter-arrival " << s.jobs.mean_interarrival_s
            << " s, control cycle " << s.controller.cycle_s << " s\n\n";

  const auto result = scenario::run_experiment(s, options);
  scenario::print_summary(std::cout, result.summary);

  // Phase narrative: where did the system transition?
  const auto* tx_u = result.series.find("tx_utility");
  const auto* lr_u = result.series.find("lr_hyp_utility");
  const auto* tx_a = result.series.find("tx_alloc_mhz");
  if (tx_u != nullptr && lr_u != nullptr && tx_a != nullptr) {
    const double t_end = result.summary.sim_end_time_s;
    std::cout << "\nPhase narrative:\n";
    std::cout << "  t=0..10%    tx utility " << tx_u->mean_over(0, 0.1 * t_end)
              << "  lr utility " << lr_u->mean_over(0, 0.1 * t_end)
              << "  (uncontended: transactional at its demand)\n";
    std::cout << "  t=40..70%   tx utility " << tx_u->mean_over(0.4 * t_end, 0.7 * t_end)
              << "  lr utility " << lr_u->mean_over(0.4 * t_end, 0.7 * t_end)
              << "  (crowded: utilities equalized)\n";
    std::cout << "  t=95..100%  tx utility " << tx_u->mean_over(0.95 * t_end, t_end)
              << "  lr utility " << lr_u->mean_over(0.95 * t_end, t_end)
              << "  (drained: CPU returned to transactional)\n";
  }

  const std::string dir = cfg.get_string("out", "example_out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/paper_section3.csv";
  if (result.series.save_csv(path)) {
    std::cout << "\nFull time series written to " << path << "\n";
  }
  return 0;
}
