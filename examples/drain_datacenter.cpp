// Drain a datacenter live: three controller domains share one workload
// stream; midway through the run the primary domain is drained (weight
// 0) for maintenance. The migration manager checkpoints its running
// jobs, ships the VM images over the inter-domain links, and resumes
// them in the healthy domains — no work is lost beyond the modeled
// suspend and transfer dead time. The drained domain recovers later and
// the router starts sending it work again.
//
// Build & run:   ./build/drain_datacenter
// Options:       --router=least-loaded|capacity-weighted|sticky
//                --jobs=N --horizon=SECONDS --seed=N
//                --policy=drain|rebalance|drain+rebalance
//                --link_mode=p2p|uplink --selection=fifo|cost

#include <iostream>

#include "scenario/federation_experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: drain_datacenter [--router=NAME] [--policy=NAME] [--jobs=N]"
                 " [--horizon=S] [--seed=N]\n"
              << e.what() << "\n";
    return 1;
  }

  scenario::Scenario base = scenario::section3_scaled(0.4);  // 10 nodes total
  base.name = "drain-datacenter";
  base.jobs.count = cfg.get_int("jobs", 90);
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  scenario::FederatedScenario fs =
      scenario::federate(base, 3, cfg.get_string("router", "least-loaded"));
  fs.domains[0].name = "dc-primary";
  fs.domains[0].cluster.nodes = 4;
  fs.domains[1].name = "dc-east";
  fs.domains[1].cluster.nodes = 3;
  fs.domains[2].name = "dc-west";
  fs.domains[2].cluster.nodes = 3;

  // Maintenance window: the primary drains at t=15000s and recovers at
  // t=45000s. Between those, the migration manager evacuates every job
  // it hosts.
  fs.weight_events.push_back({0, 15000.0, 0.0});
  fs.weight_events.push_back({0, 45000.0, 1.0});

  fs.migration.enabled = true;
  fs.migration.policy = cfg.get_string("policy", "drain");
  fs.migration.link_mode = cfg.get_string("link_mode", "p2p");
  fs.migration.selection = cfg.get_string("selection", "fifo");
  try {
    scenario::validate_migration_modes(fs.migration);
  } catch (const util::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  fs.migration.check_interval_s = 120.0;
  fs.migration.max_moves_per_tick = 6;
  // Asymmetric links: east is close (fat pipe), west is far. In uplink
  // mode per-pair bandwidth is meaningless (one shared pool leaves the
  // primary), so only the propagation latencies carry over and the pool
  // gets the mean of the two pipes.
  if (fs.migration.link_mode == "uplink") {
    fs.migration.links.push_back({0, 1, -1.0, 1.0});
    fs.migration.links.push_back({0, 2, -1.0, 6.0});
    fs.migration.uplinks.push_back({0, 240.0});
  } else {
    fs.migration.links.push_back({0, 1, 400.0, 1.0});
    fs.migration.links.push_back({0, 2, 80.0, 6.0});
  }

  fs.horizon_s = cfg.get_double("horizon", 80000.0);

  scenario::ExperimentOptions options;
  options.validate_invariants = true;

  std::cout << "Federation '" << fs.name << "': 3 domains, router '" << fs.router
            << "', migration policy '" << fs.migration.policy << "', " << base.jobs.count
            << " jobs; dc-primary drains at t=15000s, recovers at t=45000s\n\n";

  const scenario::FederatedResult result = scenario::run_federated_experiment(fs, options);

  for (const auto& d : result.domains) {
    std::cout << "=== " << d.name << " (" << d.jobs_routed << " jobs owned at end) ===\n";
    scenario::print_summary(std::cout, d.result.summary);
    std::cout << "\n";
  }

  std::cout << "=== federation (merged) ===\n";
  scenario::print_summary(std::cout, result.summary);

  const auto& mig = result.migration;
  std::cout << "\nMigrations: " << mig.started << " started, " << mig.completed
            << " completed, " << mig.in_flight << " in flight at horizon\n"
            << "  images moved:     " << mig.bytes_moved_mb << " MB\n"
            << "  time on the wire: " << mig.transfer_seconds << " s\n"
            << "  work lost:        " << mig.work_lost_mhz_s << " MHz*s (exact checkpoints)\n";

  std::cout << "\nEvacuation over time (jobs running per domain, drained-domain weight):\n";
  scenario::print_series_csv(std::cout, result.series,
                             {"fed_jobs_running", "mig_started", "mig_completed",
                              "weight_dc-primary"},
                             /*every_nth=*/4);
  return 0;
}
