// Multi-datacenter federation: three controller domains of different
// sizes share one workload stream — a diurnal transactional load plus a
// batch-job stream — under a pluggable cross-domain router. Midway
// through the run the largest domain browns out (loses most of its
// effective capacity), the router re-splits demand toward the healthy
// domains, and the domain recovers later.
//
// Build & run:   ./build/multi_datacenter
// Options:       --router=least-loaded|capacity-weighted|sticky
//                --jobs=N --horizon=SECONDS --seed=N

#include <iostream>

#include "scenario/federation_experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: multi_datacenter [--router=NAME] [--jobs=N] [--horizon=S] [--seed=N]\n"
              << e.what() << "\n";
    return 1;
  }

  // Start from the scaled Section-3 workload, then shard it into three
  // unequal datacenters: a large primary and two smaller satellites.
  scenario::Scenario base = scenario::section3_scaled(0.4);  // 10 nodes total
  base.name = "multi-datacenter";
  base.jobs.count = cfg.get_int("jobs", 120);
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

  // Skewed diurnal transactional load: overnight trough, morning ramp,
  // midday peak, evening decay. (Rates are req/s for the whole
  // federation; the router splits them across domains.)
  workload::DemandTrace diurnal;
  diurnal.add(util::Seconds{0.0}, 3.0);       // night
  diurnal.add(util::Seconds{10000.0}, 8.0);   // morning ramp
  diurnal.add(util::Seconds{25000.0}, 12.0);  // midday peak
  diurnal.add(util::Seconds{45000.0}, 6.0);   // evening
  diurnal.add(util::Seconds{60000.0}, 3.0);   // night again
  base.apps[0].trace = diurnal;

  scenario::FederatedScenario fs =
      scenario::federate(base, 3, cfg.get_string("router", "least-loaded"));
  fs.domains[0].name = "dc-primary";
  fs.domains[0].cluster.nodes = 5;
  fs.domains[1].name = "dc-east";
  fs.domains[1].cluster.nodes = 3;
  fs.domains[2].name = "dc-west";
  fs.domains[2].cluster.nodes = 2;

  // Brownout: the primary datacenter loses 70% of its effective capacity
  // during the midday peak, then recovers.
  fs.weight_events.push_back({0, 20000.0, 0.3});
  fs.weight_events.push_back({0, 40000.0, 1.0});

  fs.horizon_s = cfg.get_double("horizon", 80000.0);

  scenario::ExperimentOptions options;
  options.validate_invariants = true;

  std::cout << "Federation '" << fs.name << "': " << fs.domains.size()
            << " domains under router '" << fs.router << "', " << base.jobs.count
            << " jobs, diurnal transactional load, dc-primary brownout at t=20000s\n\n";

  const scenario::FederatedResult result = scenario::run_federated_experiment(fs, options);

  for (const auto& d : result.domains) {
    std::cout << "=== " << d.name << " (" << d.jobs_routed << " jobs routed) ===\n";
    scenario::print_summary(std::cout, d.result.summary);
    std::cout << "\n";
  }

  std::cout << "=== federation (merged) ===\n";
  scenario::print_summary(std::cout, result.summary);

  std::cout << "\nFederation allocation over time (MHz) and domain weights:\n";
  scenario::print_series_csv(std::cout, result.series,
                             {"fed_tx_alloc_mhz", "fed_lr_alloc_mhz", "weight_dc-primary"},
                             /*every_nth=*/4);
  return 0;
}
