// A heterogeneous datacenter: three machine classes under one
// utility-driven controller.
//
//   x86   10 nodes × 8 cores × 2.5 GHz          — the general-purpose pool
//   arm   8 nodes × 16 cores × 2.0 GHz × 0.9    — dense, slower per thread
//   gpu   4 nodes × 8 cores × 3.0 GHz + "gpu"   — the only accelerated pool
//
// The batch stream is striped across constraint profiles: every fourth
// job needs a GPU, the next quarter is pinned to arm64, another quarter
// demands >= 2.5 GHz delivered per core (which excludes the arm pool),
// and the rest run anywhere. A transactional app pinned to x86_64 skews
// its web instances away from the arm pool. The constrained solver packs
// all of it from one shared problem.
//
// The example is self-checking (CI smoke): after every control cycle it
// audits every placed VM against its owner's ConstraintSet and exits
// nonzero on any violation, if a GPU job ever lands off the gpu pool, or
// if the run ends with jobs unfinished.
//
// Build & run:   ./build/hetero_datacenter
// Options:       --jobs=N --seed=N

#include <iostream>

#include "cluster/machine_class.hpp"
#include "core/controller.hpp"
#include "core/utility_policy.hpp"
#include "core/world.hpp"
#include "scenario/class_factory.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"
#include "utility/utility_fn.hpp"
#include "workload/job_factory.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: hetero_datacenter [--jobs=N] [--seed=N]\n" << e.what() << "\n";
    return 1;
  }
  const long n_jobs = cfg.get_int("jobs", 120);
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  // --- the machine-class pools (the config-file spelling would be
  // classes = x86,arm,gpu plus class.<name>.* keys) ---------------------------
  scenario::ClusterSpec cluster_spec;
  cluster::MachineClass x86;
  x86.name = "x86";
  x86.arch = "x86_64";
  x86.cores = 8;
  x86.core_mhz = 2500.0;
  x86.mem_mb = 8192.0;
  cluster::MachineClass arm;
  arm.name = "arm";
  arm.arch = "arm64";
  arm.cores = 16;
  arm.core_mhz = 2000.0;
  arm.speed_factor = 0.9;
  arm.mem_mb = 12288.0;
  cluster::MachineClass gpu;
  gpu.name = "gpu";
  gpu.arch = "x86_64";
  gpu.cores = 8;
  gpu.core_mhz = 3000.0;
  gpu.mem_mb = 16384.0;
  gpu.accel = {"gpu"};
  cluster_spec.classes = {{x86, 10}, {arm, 8}, {gpu, 4}};
  scenario::validate_class_pools(cluster_spec);

  sim::Engine engine;
  core::World world;
  scenario::populate_cluster(world.cluster(), cluster_spec);
  const auto& registry = world.cluster().classes();

  // --- transactional load, pinned to x86_64 (x86 + gpu pools) ----------------
  workload::TxAppSpec app;
  app.id = util::AppId{1};
  app.name = "frontend";
  app.rt_goal = util::Seconds{1.0};
  app.service_demand = 600.0;
  app.instance_memory = util::MemMb{1024.0};
  app.max_instances = 14;
  app.max_cpu_per_instance = util::CpuMhz{20000.0};
  app.constraint.arch = "x86_64";
  world.add_app(workload::TxApp{app, workload::DemandTrace{12.0}});  // 7.2 GHz offered

  // --- the striped batch stream ----------------------------------------------
  workload::JobTemplate tmpl;
  tmpl.work = util::MhzSeconds{3.0e6};  // 1000 s at full speed
  tmpl.max_speed = util::CpuMhz{3000.0};
  tmpl.memory = util::MemMb{2048.0};
  tmpl.goal_stretch = 8.0;
  util::Rng rng(seed);
  workload::PoissonArrivals arrivals{util::Seconds{0.0}, util::Seconds{200.0}, n_jobs};
  std::vector<workload::JobSpec> jobs = workload::generate_jobs(arrivals, tmpl, rng);
  long gpu_jobs = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    switch (i % 4) {
      case 0: jobs[i].constraint.accel = {"gpu"}; ++gpu_jobs; break;
      case 1: jobs[i].constraint.arch = "arm64"; break;
      case 2: jobs[i].constraint.min_core_mhz = 2500.0; break;  // excludes arm
      default: break;  // run anywhere
    }
  }
  for (const auto& spec : jobs) {
    engine.schedule_at(spec.submit_time, sim::EventPriority::kWorkloadArrival,
                       [&world, spec] { world.submit_job(spec); });
  }

  // --- controller with the per-cycle constraint audit -------------------------
  auto policy = std::make_unique<core::UtilityDrivenPolicy>(
      std::make_shared<utility::JobUtilityModel>(), std::make_shared<utility::TxUtilityModel>());
  core::PlacementController controller(engine, world, std::move(policy));

  long violations = 0;
  long gpu_jobs_seen_on_gpu = 0;
  long cycles = 0;
  controller.set_observer([&](const core::CycleReport&) {
    ++cycles;
    const cluster::Cluster& cl = world.cluster();
    for (util::VmId vm_id : cl.vm_ids()) {
      const cluster::Vm& vm = cl.vm(vm_id);
      if (!vm.placed()) continue;
      const cluster::MachineClass& host = registry.at(cl.node(vm.node).klass());
      const cluster::ConstraintSet& c = vm.kind == cluster::VmKind::kJobContainer
                                            ? world.job(vm.job).spec().constraint
                                            : world.app(vm.app).spec().constraint;
      if (!c.admits(host)) {
        ++violations;
        std::cerr << "violation: " << to_string(vm.kind) << " on class " << host.name << "\n";
      }
      if (vm.kind == cluster::VmKind::kJobContainer &&
          !world.job(vm.job).spec().constraint.accel.empty() && host.has_accel("gpu")) {
        ++gpu_jobs_seen_on_gpu;
      }
    }
  });

  controller.start();
  while (world.completed_count() < static_cast<std::size_t>(n_jobs) &&
         engine.now().get() < 5.0e6) {
    engine.run_until(engine.now() + util::Seconds{6000.0});
  }

  const auto by_class = world.cluster().placeable_capacity_by_class();
  std::cout << "hetero-datacenter: " << world.cluster().node_count() << " nodes in "
            << registry.size() - 1 << " classes, " << n_jobs << " jobs (" << gpu_jobs
            << " GPU-constrained), " << cycles << " control cycles\n";
  for (std::size_t ci = 1; ci < by_class.size(); ++ci) {
    std::cout << "  class " << registry.at(static_cast<cluster::ClassId>(ci)).name
              << ": placeable " << by_class[ci].cpu.get() / 1000.0 << " GHz\n";
  }
  std::cout << "completed " << world.completed_count() << "/" << n_jobs
            << ", constraint violations " << violations << ", GPU-job placements on gpu pool "
            << gpu_jobs_seen_on_gpu << "\n";

  if (violations > 0) {
    std::cerr << "FAIL: placement violated machine constraints\n";
    return 1;
  }
  if (gpu_jobs_seen_on_gpu == 0) {
    std::cerr << "FAIL: no GPU-constrained job was ever observed on the gpu pool\n";
    return 1;
  }
  if (world.completed_count() < static_cast<std::size_t>(n_jobs)) {
    std::cerr << "FAIL: jobs unfinished at the safety cap\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
