// A week of chaos: three controller domains run one shared workload
// stream while the fault injector crashes nodes (seeded MTTF/MTTR
// renewal processes), takes inter-domain links down mid-evacuation, and
// blacks out a whole domain for two hours. Crashed jobs fall back to
// their last periodic checkpoint and re-enter the queue; transfers
// killed on a dead link retry with capped exponential backoff; the
// blacked-out domain's demand fails over and its controller resyncs on
// recovery. SLA utility degrades gracefully instead of collapsing.
//
// The example is self-checking (CI smoke): it exits nonzero unless the
// run saw real availability loss, at least one successful transfer
// retry, and every crashed job either recovered or was accounted in
// jobs_lost_progress_s.
//
// Build & run:   ./build/chaos_datacenter
// Options:       --jobs=N --horizon=SECONDS --seed=N
//                --node_mttf=S --node_mttr=S --checkpoint=S
//                --trace=PATH (stream a Chrome trace-event JSON of the run;
//                open in Perfetto) --metrics=PATH (Prometheus text snapshot)
//                --sla_report=PATH (SLA attribution + alert JSON; a human
//                CSV lands next to it at PATH.csv)
//
// The run always carries two SLOs — 95% of web response-time samples
// under goal, and half the batch jobs on goal — so the SLA ledger's
// attribution-closure assertion (components sum exactly to each job's
// wall lifetime) runs in-binary on every completed job. With
// --sla_report the example re-reads its own report and further checks
// that a web burn-rate alert opened during the dc-east blackout and
// closed after recovery.

#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/trace_check.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: chaos_datacenter [--jobs=N] [--horizon=S] [--seed=N]"
                 " [--node_mttf=S] [--node_mttr=S] [--checkpoint=S]"
                 " [--trace=PATH] [--metrics=PATH] [--sla_report=PATH]\n"
              << e.what() << "\n";
    return 1;
  }

  scenario::Scenario base = scenario::section3_scaled(0.4);  // 10 nodes total
  base.name = "chaos-datacenter";
  base.jobs.count = cfg.get_int("jobs", 320);
  base.jobs.mean_interarrival_s = 1500.0;  // stream spans most of the week
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

  scenario::FederatedScenario fs = scenario::federate(base, 3);
  fs.domains[0].name = "dc-primary";
  fs.domains[0].cluster.nodes = 4;
  fs.domains[1].name = "dc-east";
  fs.domains[1].cluster.nodes = 3;
  fs.domains[2].name = "dc-west";
  fs.domains[2].cluster.nodes = 3;
  fs.horizon_s = cfg.get_double("horizon", 604800.0);  // one week

  // Live migration with link-fault retries: a drain of the primary mid-
  // week guarantees a stream of outbound transfers for the link faults
  // below to hit.
  fs.migration.enabled = true;
  fs.migration.policy = "drain";
  fs.migration.check_interval_s = 120.0;
  fs.migration.max_moves_per_tick = 6;
  fs.migration.links.push_back({0, 1, 120.0, 1.0});
  fs.migration.links.push_back({0, 2, 80.0, 6.0});
  fs.migration.max_transfer_retries = 6;
  fs.migration.retry_backoff_s = 30.0;
  fs.migration.retry_backoff_max_s = 480.0;
  fs.migration.rescore_queued_transfers = true;
  fs.weight_events.push_back({0, 200000.0, 0.0});  // maintenance drain
  fs.weight_events.push_back({0, 260000.0, 1.0});

  // Chaos plan: stochastic node crashes all week (each node fails about
  // once a day, one-hour repairs), both outbound links of the draining
  // primary die mid-evacuation, and dc-east goes dark for two hours.
  fs.faults.enabled = true;
  fs.faults.checkpoint_interval_s = cfg.get_double("checkpoint", 1800.0);
  fs.faults.node_mttf_s = cfg.get_double("node_mttf", 86400.0);
  fs.faults.node_mttr_s = cfg.get_double("node_mttr", 3600.0);
  // The drain's first migration tick lands at t=200040 (120 s cadence);
  // cutting both links one second later catches its evacuation wave
  // mid-suspend/mid-wire, forcing retry-wait and backed-off retries that
  // succeed once the windows close (well inside the 6-retry budget).
  fs.faults.events.push_back({"link-down", 0, 0, 1, 200041.0, 400.0, 1.0});
  fs.faults.events.push_back({"link-down", 0, 0, 2, 200041.0, 700.0, 1.0});
  // "Dark" means dark: the blackout fails over demand and takes the
  // controller offline, and simultaneous crash windows on all three
  // dc-east nodes cut the power for real — every resident VM dies, so
  // the domain's web samples breach for the whole outage and the web
  // burn-rate alert below has a genuine signal to fire on.
  fs.faults.events.push_back({"blackout", 1, 0, 0, 350000.0, 7200.0, 1.0});
  fs.faults.events.push_back({"node-crash", 1, 0, 0, 350000.0, 7200.0, 1.0});
  fs.faults.events.push_back({"node-crash", 1, 1, 0, 350000.0, 7200.0, 1.0});
  fs.faults.events.push_back({"node-crash", 1, 2, 0, 350000.0, 7200.0, 1.0});

  // Observability (opt-in): stream a full control-plane trace and dump a
  // Prometheus metrics snapshot at end of run.
  const std::string trace_path = cfg.get_string("trace", "");
  if (!trace_path.empty()) {
    fs.obs.trace = "stream";
    fs.obs.trace_path = trace_path;
  }
  fs.obs.metrics_path = cfg.get_string("metrics", "");

  // SLA ledger + burn-rate alerting: registering SLOs turns the ledger
  // on, so every completed job's attribution closure is asserted inside
  // the run. The web SLO's windows are tuned so the two-hour dc-east
  // blackout (a third of all web samples going bad) reliably opens an
  // alert and recovery reliably closes it.
  fs.slos.push_back({"web", /*target=*/0.95, /*long_window_s=*/14400.0,
                     /*short_window_s=*/3600.0, /*burn_threshold=*/2.0});
  fs.slos.push_back({"jobs", /*target=*/0.5, /*long_window_s=*/86400.0,
                     /*short_window_s=*/14400.0, /*burn_threshold=*/1.5});
  const std::string sla_path = cfg.get_string("sla_report", "");
  if (!sla_path.empty()) {
    fs.obs.sla_report_path = sla_path;
    fs.obs.sla_report_csv_path = sla_path + ".csv";
  }

  scenario::ExperimentOptions options;
  options.validate_invariants = true;

  std::cout << "Federation '" << fs.name << "': 3 domains, " << base.jobs.count
            << " jobs over one simulated week.\nChaos: node MTTF " << fs.faults.node_mttf_s
            << " s / MTTR " << fs.faults.node_mttr_s << " s per node, checkpoints every "
            << fs.faults.checkpoint_interval_s
            << " s; both primary uplinks cut during the t=200ks drain; dc-east dark "
               "350000-357200 s\n\n";

  const scenario::FederatedResult result = scenario::run_federated_experiment(fs, options);

  for (const auto& d : result.domains) {
    std::cout << "=== " << d.name << " (" << d.jobs_routed << " jobs owned at end) ===\n";
    scenario::print_summary(std::cout, d.result.summary);
    std::cout << "\n";
  }
  std::cout << "=== federation (merged) ===\n";
  scenario::print_summary(std::cout, result.summary);

  const auto& ft = result.faults;
  const auto& mig = result.migration;
  std::cout << "\nFaults: " << ft.node_crashes << " node crashes (" << ft.node_recoveries
            << " repaired), " << ft.link_faults << " link faults, " << ft.blackouts
            << " blackouts\n"
            << "  jobs reverted:   " << ft.jobs_reverted << " (progress lost "
            << ft.jobs_lost_progress_s << " s at full speed)\n"
            << "  downtime:        " << ft.downtime_s << " s integrated across domains"
            << " (availability " << result.summary.availability << ")\n"
            << "  MTTR:            " << result.fault_mttr_s << " s over " << ft.repairs
            << " completed repairs\n"
            << "Transfers: " << mig.transfer_retries << " retries after link kills, "
            << mig.transfer_failbacks << " failbacks, " << mig.transfers_rescored
            << " queue re-scores\n";

  std::cout << "\nAvailability & utility over time:\n";
  scenario::print_series_csv(std::cout, result.series,
                             {"fed_availability", "fed_fault_failed_nodes",
                              "fed_jobs_running", "fed_jobs_completed"},
                             /*every_nth=*/16);

  // --- self-checks (CI smoke) -------------------------------------------------
  int failures = 0;
  const auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  expect(ft.downtime_s > 0.0, "run saw nonzero availability loss");
  expect(ft.node_crashes > 0, "stochastic node crashes fired");
  expect(ft.blackouts == 1 && ft.blackout_recoveries == 1, "blackout fired and recovered");
  expect(mig.transfer_retries >= 1, "at least one transfer retried after a link kill");
  expect(ft.jobs_reverted > 0, "node crashes actually hit running jobs");
  expect(ft.jobs_lost_progress_s >= 0.0, "lost progress is accounted");
  // Job conservation: every submitted job is in exactly one world or in
  // flight with the migration manager — crashes lose progress, never jobs.
  long in_worlds = 0;
  for (const auto& d : result.domains) in_worlds += d.result.summary.jobs_submitted;
  expect(in_worlds <= base.jobs.count, "no job duplicated across worlds");
  expect(in_worlds + mig.in_flight >= base.jobs.count,
         "every crashed/migrated job is in a world or in flight");
  expect(result.summary.jobs_completed > base.jobs.count / 2,
         "the cluster still completes most jobs under chaos");

  // With --sla_report, re-read the written report and verify the blackout
  // left its fingerprint: a web burn-rate alert opened while dc-east was
  // dark (350000–357200 s) and closed once the short window drained
  // after recovery.
  if (!sla_path.empty()) {
    const double blackout_start = 350000.0;
    const double blackout_end = 357200.0;
    bool blackout_alert_opened = false;
    bool blackout_alert_closed = false;
    try {
      std::ifstream f(sla_path);
      std::ostringstream buf;
      buf << f.rdbuf();
      const obs::JsonValue doc = obs::parse_json(buf.str());
      const obs::JsonValue* alerts = doc.find("alerts");
      const obs::JsonValue* events = alerts != nullptr ? alerts->find("events") : nullptr;
      if (events != nullptr) {
        for (const obs::JsonValue& e : events->array) {
          const obs::JsonValue* app = e.find("app");
          const obs::JsonValue* opened = e.find("opened_s");
          if (app == nullptr || app->string != "web" || opened == nullptr) continue;
          // One sampling period of slack: the opening evaluation lands at
          // the first tick after enough bad samples accumulate.
          if (opened->number < blackout_start || opened->number > blackout_end + 600.0) continue;
          blackout_alert_opened = true;
          const obs::JsonValue* closed = e.find("closed_s");
          if (closed != nullptr && closed->type == obs::JsonValue::Type::kNumber &&
              closed->number > blackout_end) {
            blackout_alert_closed = true;
          }
        }
      }
    } catch (const std::exception& e) {
      std::cerr << "CHECK FAILED: SLA report unreadable: " << e.what() << "\n";
      ++failures;
    }
    expect(blackout_alert_opened, "a web burn-rate alert opened during the dc-east blackout");
    expect(blackout_alert_closed, "the blackout alert closed after recovery");
  }

  if (failures > 0) {
    std::cerr << "\n" << failures << " chaos self-check(s) failed\n";
    return 1;
  }
  std::cout << "\nAll chaos self-checks passed.\n";
  if (!trace_path.empty()) {
    std::cout << "Trace written to " << trace_path << " (open in https://ui.perfetto.dev)\n";
  }
  if (!fs.obs.metrics_path.empty()) {
    std::cout << "Metrics snapshot written to " << fs.obs.metrics_path << "\n";
  }
  if (!sla_path.empty()) {
    std::cout << "SLA report written to " << sla_path << " (CSV: " << sla_path << ".csv)\n";
  }
  return 0;
}
