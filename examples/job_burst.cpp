// Job burst + transactional demand spike: exercises the control
// mechanisms the paper leverages — suspension, resumption, migration and
// dynamic web-instance churn — in one run.
//
// Timeline:
//   phase 1 (0..8000 s)      low transactional load; a burst of batch
//                            jobs fills every memory slot;
//   phase 2 (8000..16000 s)  the transactional rate quadruples: the
//                            controller grows the instance cluster,
//                            evicting (suspending/migrating) the least
//                            urgent jobs to reclaim memory;
//   phase 3 (16000 s..)      the rate drops back: instances retire and
//                            suspended jobs resume.
//
// Run:  ./build/examples/job_burst

#include <iostream>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  scenario::Scenario s;
  s.name = "job-burst";
  s.cluster.nodes = static_cast<int>(cfg.get_int("nodes", 6));
  s.cluster.cpu_per_node_mhz = 12000.0;
  s.cluster.mem_per_node_mb = 4096.0;

  // Burst of jobs right at the start: 30 jobs in ~1500 s.
  s.jobs.count = cfg.get_int("jobs", 30);
  s.jobs.mean_interarrival_s = 50.0;
  s.jobs.tmpl.work = util::MhzSeconds{2.4e7};  // 8000 s at full speed
  s.jobs.tmpl.max_speed = util::CpuMhz{3000.0};
  s.jobs.tmpl.memory = util::MemMb{1300.0};
  s.jobs.tmpl.goal_stretch = 2.5;

  // Transactional app with a step-function demand trace.
  scenario::TxAppScenario web;
  web.spec.id = util::AppId{0};
  web.spec.name = "web";
  web.spec.rt_goal = util::Seconds{3.0};
  web.spec.service_demand = 5000.0;
  web.spec.max_utilization = 0.9;
  web.spec.throughput_exponent = 0.5;
  web.spec.utility_cap = 0.9;
  web.spec.instance_memory = util::MemMb{1024.0};
  web.spec.min_instances = 1;
  web.spec.max_instances = s.cluster.nodes;
  web.spec.max_cpu_per_instance = util::CpuMhz{12000.0};
  web.trace.add(util::Seconds{0.0}, 1.5);      // light
  web.trace.add(util::Seconds{8000.0}, 6.0);   // spike: 4×
  web.trace.add(util::Seconds{16000.0}, 1.5);  // back to light
  s.apps.push_back(std::move(web));

  s.controller.cycle_s = 300.0;  // finer cycle to see the churn
  s.sample_interval_s = 300.0;
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 3));

  scenario::ExperimentOptions options;
  options.validate_invariants = true;

  const auto result = scenario::run_experiment(s, options);
  scenario::print_summary(std::cout, result.summary);

  std::cout << "\nChurn timeline (per-cycle action counts):\n";
  scenario::print_series_csv(
      std::cout, result.series,
      {"suspends", "migrations", "instance_starts", "jobs_running", "jobs_suspended",
       "tx_alloc_mhz"},
      /*every_nth=*/4);

  const long disruptive = result.summary.actions.total_disruptive();
  std::cout << "\n"
            << (disruptive > 0
                    ? "Suspension/resume/migration were exercised by the demand spike."
                    : "WARNING: no disruptive actions occurred — spike too small?")
            << " (suspends+resumes+migrations = " << disruptive << ")\n";
  return 0;
}
