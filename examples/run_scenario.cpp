// Generic scenario runner: define an experiment entirely in a key=value
// config file (or on the command line) and run it under any policy — no
// recompilation.
//
//   ./build/examples/run_scenario --config=examples/configs/section3.conf
//   ./build/examples/run_scenario --nodes=10 --jobs.count=100 --cycle_s=300
//   ./build/examples/run_scenario --config=base.conf --policy=static-partition
//
// Command-line keys override file keys. `--print_config` echoes the fully
// resolved scenario (archivable; round-trips through the loader).

#include <fstream>
#include <iostream>
#include <sstream>

#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/report.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  try {
    util::Config args = util::Config::from_args(argc, argv);

    util::Config merged;
    if (auto path = args.raw("config")) {
      std::ifstream in(*path);
      if (!in) {
        std::cerr << "cannot open config file: " << *path << "\n";
        return 1;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      merged = util::Config::from_string(buffer.str());
    }
    // Runner-level keys are not scenario keys: strip before building.
    const std::string policy_name = args.get_string("policy", "utility-driven");
    const bool print_config = args.get_bool("print_config", false);
    const std::string out_csv = args.get_string("out_csv", "");
    util::Config scenario_overrides;
    for (const auto& key : args.keys()) {
      if (key == "config" || key == "policy" || key == "print_config" || key == "out_csv") {
        continue;
      }
      scenario_overrides.set(key, *args.raw(key));
    }
    merged.merge(scenario_overrides);

    const scenario::Scenario s = scenario::scenario_from_config(merged);
    if (print_config) {
      std::cout << scenario::scenario_to_config(s);
      return 0;
    }

    scenario::ExperimentOptions options;
    options.policy = scenario::policy_from_string(policy_name);

    std::cout << "Running scenario '" << s.name << "' (" << s.cluster.nodes << " nodes, "
              << s.jobs.count << " jobs, " << s.apps.size() << " app(s)) under "
              << scenario::to_string(options.policy) << "\n\n";
    const auto result = scenario::run_experiment(s, options);
    scenario::print_summary(std::cout, result.summary);

    if (!out_csv.empty()) {
      if (result.series.save_csv(out_csv)) {
        std::cout << "\nseries written to " << out_csv << "\n";
      } else {
        std::cerr << "\nWARNING: failed to write " << out_csv << "\n";
        return 1;
      }
    }
    return 0;
  } catch (const util::ConfigError& e) {
    std::cerr << "config error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
