// Evacuate a datacenter through a narrow, shared uplink.
//
// Three controller domains share one workload stream. At t=15000s the
// primary domain is drained for maintenance and every job it hosts must
// leave — but unlike drain_datacenter's independent point-to-point
// links, this scenario runs the LinkScheduler in `uplink` mode: every
// checkpoint image leaving dc-primary contends for one FIFO bandwidth
// pool, so a mass evacuation queues and drains at wire speed instead of
// finishing instantaneously in parallel. Cost-aware selection
// (migration.selection=cost) ships free pending moves and cheap images
// first, cutting the time jobs spend parked behind the bottleneck.
//
// Build & run:   ./build/contended_evacuation
// Options:       --link_mode=uplink|p2p --selection=cost|fifo
//                --uplink=MB_PER_S --jobs=N --horizon=S --seed=N

#include <iostream>

#include "scenario/federation_experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: contended_evacuation [--link_mode=NAME] [--selection=NAME]"
                 " [--uplink=MB_PER_S] [--jobs=N] [--horizon=S] [--seed=N]\n"
              << e.what() << "\n";
    return 1;
  }

  scenario::Scenario base = scenario::section3_scaled(0.4);  // 10 nodes total
  base.name = "contended-evacuation";
  base.jobs.count = cfg.get_int("jobs", 90);
  base.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

  scenario::FederatedScenario fs = scenario::federate(base, 3);
  fs.domains[0].name = "dc-primary";
  fs.domains[0].cluster.nodes = 4;
  fs.domains[1].name = "dc-east";
  fs.domains[1].cluster.nodes = 3;
  fs.domains[2].name = "dc-west";
  fs.domains[2].cluster.nodes = 3;

  // Maintenance window on the primary.
  fs.weight_events.push_back({0, 15000.0, 0.0});
  fs.weight_events.push_back({0, 45000.0, 1.0});

  fs.migration.enabled = true;
  fs.migration.policy = "drain";
  fs.migration.check_interval_s = 120.0;
  fs.migration.max_moves_per_tick = 8;
  fs.migration.link_mode = cfg.get_string("link_mode", "uplink");
  fs.migration.selection = cfg.get_string("selection", "cost");
  try {
    scenario::validate_migration_modes(fs.migration);
  } catch (const util::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  // The bottleneck: dc-primary's entire evacuation squeezes through one
  // thin uplink pool (default links would be 125 MB/s per pair). Under
  // --link_mode=p2p the same figure applies per destination pair
  // instead, so the two modes compare pooled vs. parallel bottlenecks.
  const double uplink_mb_per_s = cfg.get_double("uplink", 20.0);
  if (uplink_mb_per_s <= 0.0) {
    std::cerr << "--uplink must be positive (MB/s), got " << uplink_mb_per_s << "\n";
    return 1;
  }
  if (fs.migration.link_mode == "uplink") {
    fs.migration.uplinks.push_back({0, uplink_mb_per_s});
  } else {
    fs.migration.links.push_back({0, 1, uplink_mb_per_s, -1.0});
    fs.migration.links.push_back({0, 2, uplink_mb_per_s, -1.0});
  }

  fs.horizon_s = cfg.get_double("horizon", 80000.0);

  scenario::ExperimentOptions options;
  options.validate_invariants = true;

  std::cout << "Federation '" << fs.name << "': 3 domains, link mode '"
            << fs.migration.link_mode << "', selection '" << fs.migration.selection
            << "', dc-primary uplink " << uplink_mb_per_s << " MB/s, " << base.jobs.count
            << " jobs; dc-primary drains at t=15000s, recovers at t=45000s\n\n";

  const scenario::FederatedResult result = scenario::run_federated_experiment(fs, options);

  for (const auto& d : result.domains) {
    std::cout << "=== " << d.name << " (" << d.jobs_routed << " jobs owned at end) ===\n";
    scenario::print_summary(std::cout, d.result.summary);
    std::cout << "\n";
  }

  const auto& mig = result.migration;
  std::cout << "=== federation (merged) ===\n";
  scenario::print_summary(std::cout, result.summary);
  std::cout << "\nMigrations: " << mig.started << " started, " << mig.completed
            << " completed, " << mig.in_flight << " in flight at horizon\n"
            << "  images moved:       " << mig.bytes_moved_mb << " MB\n"
            << "  time on the wire:   " << mig.transfer_seconds << " s (uncontended model)\n"
            << "  queued behind link: " << mig.queue_wait_seconds << " s cumulative\n"
            << "  work lost:          " << mig.work_lost_mhz_s << " MHz*s (exact checkpoints)\n";

  std::cout << "\nEvacuation vs. the uplink queue over time:\n";
  scenario::print_series_csv(std::cout, result.series,
                             {"mig_started", "mig_completed", "mig_queue_depth",
                              "mig_queue_wait_s", "weight_dc-primary"},
                             /*every_nth=*/4);
  return 0;
}
