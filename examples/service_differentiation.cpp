// Service differentiation: two transactional classes (gold and silver,
// different response-time goals and importance weights) sharing the
// cluster with a batch job stream.
//
// Demonstrates the paper's claim of "service differentiation based on
// high-level performance goals": under contention the equalizer holds the
// gold class at an importance-proportionally higher utility, without any
// per-node manual tuning.
//
// Run:  ./build/examples/service_differentiation [--gold_importance=F]

#include <iostream>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  scenario::Scenario s = scenario::service_differentiation_scenario();
  s.jobs.count = cfg.get_int("jobs", 300);
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  s.apps[0].spec.importance = cfg.get_double("gold_importance", 1.5);

  std::cout << "Service differentiation: gold (RT goal " << s.apps[0].spec.rt_goal
            << " s, importance " << s.apps[0].spec.importance << ") vs silver (RT goal "
            << s.apps[1].spec.rt_goal << " s, importance " << s.apps[1].spec.importance
            << ") + " << s.jobs.count << " batch jobs on " << s.cluster.nodes << " nodes\n\n";

  const auto result = scenario::run_experiment(s, {});
  scenario::print_summary(std::cout, result.summary);

  const auto* gold = result.series.find("tx_utility_gold");
  const auto* silver = result.series.find("tx_utility_silver");
  const auto* gold_rt = result.series.find("tx_rt_gold");
  const auto* silver_rt = result.series.find("tx_rt_silver");
  if (gold != nullptr && silver != nullptr) {
    const double t_end = result.summary.sim_end_time_s;
    const double g = gold->mean_over(0.3 * t_end, 0.8 * t_end);
    const double v = silver->mean_over(0.3 * t_end, 0.8 * t_end);
    std::cout << "\nContended-phase means:\n";
    std::cout << "  gold   utility " << g << "   RT " << gold_rt->mean_over(0.3 * t_end, 0.8 * t_end)
              << " s (goal " << s.apps[0].spec.rt_goal << " s)\n";
    std::cout << "  silver utility " << v << "   RT "
              << silver_rt->mean_over(0.3 * t_end, 0.8 * t_end) << " s (goal "
              << s.apps[1].spec.rt_goal << " s)\n";
    std::cout << (g >= v ? "\nGold sustains the higher utility under contention, as configured.\n"
                         : "\nWARNING: gold did not outperform silver.\n");
  }

  std::cout << "\nUtility over time:\n";
  scenario::print_series_csv(std::cout, result.series,
                             {"tx_utility_gold", "tx_utility_silver", "lr_hyp_utility"},
                             /*every_nth=*/20);
  return 0;
}
