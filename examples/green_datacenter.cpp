// Green datacenter: a diurnal workload on a cluster whose idle capacity
// is parked overnight.
//
// One transactional app follows a two-day day/night demand cycle and a
// stream of batch jobs arrives during working hours. The run executes
// twice: once "always-on" (power metering enabled, consolidation policy
// "none" — every node burns active power forever, placement identical to
// a power-disabled run) and once under the "idle-park" consolidation
// policy, which parks nodes that sit empty past an idle timeout and
// wakes them — paying the wake latency — when the morning load returns.
// The report compares the energy bills and the SLA outcomes side by
// side: the point of the subsystem is that the energy drops while the
// utility series barely move.
//
// Build & run:   ./build/green_datacenter
// Options:       --nodes=N --jobs=N --seed=N --horizon=S
//                --idle_timeout=S --wake_latency=S --cap=WATTS
//                --trace=PATH (Chrome trace-event JSON of the idle-park run;
//                open in Perfetto) --metrics=PATH (Prometheus text snapshot)

#include <iomanip>
#include <iostream>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: green_datacenter [--nodes=N] [--jobs=N] [--seed=N] [--horizon=S]"
                 " [--idle_timeout=S] [--wake_latency=S] [--cap=WATTS]"
                 " [--trace=PATH] [--metrics=PATH]\n"
              << e.what() << "\n";
    return 1;
  }

  scenario::Scenario s = scenario::section3_scaled(0.4);  // 10 nodes
  s.name = "green-datacenter";
  s.cluster.nodes = static_cast<int>(cfg.get_int("nodes", s.cluster.nodes));
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 11));

  // Two days of diurnal transactional demand: quiet nights, busy days.
  constexpr double kDay = 86400.0;
  workload::DemandTrace diurnal;
  for (int day = 0; day < 2; ++day) {
    const double t0 = day * kDay;
    diurnal.add(util::Seconds{t0}, 1.5);             // 00:00 night
    diurnal.add(util::Seconds{t0 + 25200.0}, 10.0);  // 07:00 ramp
    diurnal.add(util::Seconds{t0 + 32400.0}, 16.0);  // 09:00 peak
    diurnal.add(util::Seconds{t0 + 61200.0}, 8.0);   // 17:00 taper
    diurnal.add(util::Seconds{t0 + 72000.0}, 1.5);   // 20:00 night
  }
  s.apps[0].trace = diurnal;

  // Batch jobs arrive through the first day's working hours and are
  // sized to clear before midnight, leaving the cluster idle overnight.
  s.jobs.count = cfg.get_int("jobs", 48);
  s.jobs.mean_interarrival_s = 700.0;
  s.jobs.tmpl.work = util::MhzSeconds{6.0e6};  // 2000 s at full speed
  s.horizon_s = cfg.get_double("horizon", 2.0 * kDay);

  s.power.enabled = true;
  s.power.idle_timeout_s = cfg.get_double("idle_timeout", 1800.0);
  s.power.wake_latency_s = cfg.get_double("wake_latency", 120.0);
  s.power.park_latency_s = 30.0;
  s.power.cap_w = cfg.get_double("cap", 0.0);
  s.power.min_active_nodes = 2;

  scenario::ExperimentOptions options;
  options.validate_invariants = true;

  std::cout << "Green datacenter: " << s.cluster.nodes << " nodes, " << s.jobs.count
            << " daytime jobs, two-day diurnal web demand, horizon " << s.horizon_s
            << " s\n\n";

  // --- run 1: always-on baseline (metered, never parks) ----------------------
  scenario::Scenario always_on = s;
  always_on.power.policy = "none";
  const scenario::ExperimentResult base = scenario::run_experiment(always_on, options);

  // --- run 2: idle-park consolidation ----------------------------------------
  // Observability (opt-in) instruments only this run, so the trace shows
  // the park/wake transitions the example exists to demonstrate.
  s.power.policy = "idle-park";
  const std::string trace_path = cfg.get_string("trace", "");
  if (!trace_path.empty()) {
    s.obs.trace = "stream";
    s.obs.trace_path = trace_path;
  }
  s.obs.metrics_path = cfg.get_string("metrics", "");
  const scenario::ExperimentResult green = scenario::run_experiment(s, options);

  const double base_wh = base.series.find("energy_wh")->points().back().v;
  const double green_wh = green.series.find("energy_wh")->points().back().v;

  std::cout << "=== always-on baseline ===\n";
  scenario::print_summary(std::cout, base.summary);
  std::cout << "  energy:           " << std::fixed << std::setprecision(1) << base_wh / 1000.0
            << " kWh\n\n";

  std::cout << "=== idle-park ===\n";
  scenario::print_summary(std::cout, green.summary);
  std::cout << "  energy:           " << green_wh / 1000.0 << " kWh\n\n";

  std::cout << "Energy saved: " << std::fixed << std::setprecision(1)
            << (base_wh - green_wh) / 1000.0 << " kWh ("
            << 100.0 * (base_wh - green_wh) / base_wh << "% of " << base_wh / 1000.0
            << " kWh)\n";
  std::cout << "SLA delta:    tx utility " << std::setprecision(4)
            << base.summary.tx_utility.mean() << " -> " << green.summary.tx_utility.mean()
            << ", jobs completed " << base.summary.jobs_completed << " -> "
            << green.summary.jobs_completed << "\n";

  std::cout << "\nDraw and parked nodes over time (idle-park run):\n";
  scenario::print_series_csv(std::cout, green.series,
                             {"power_w", "power_parked_nodes", "tx_utility", "jobs_running"},
                             /*every_nth=*/8);
  if (!trace_path.empty()) {
    std::cout << "\nTrace written to " << trace_path << " (open in https://ui.perfetto.dev)\n";
  }
  if (!s.obs.metrics_path.empty()) {
    std::cout << "Metrics snapshot written to " << s.obs.metrics_path << "\n";
  }
  return 0;
}
