// Quickstart: collocate one transactional app and a stream of batch jobs
// on a small cluster, let the utility-driven controller manage placement,
// and print what happened.
//
// Build & run:   ./build/examples/quickstart
// All parameters are overridable: ./build/examples/quickstart --nodes=8 --jobs=60

#include <iostream>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;

  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: quickstart [--nodes=N] [--jobs=N] [--seed=N] [--policy=NAME]\n"
              << e.what() << "\n";
    return 1;
  }

  // A 5-node cluster: each node has 4 × 3 GHz processors and 4 GB memory.
  scenario::Scenario s = scenario::section3_scaled(0.2);
  s.name = "quickstart";
  s.cluster.nodes = static_cast<int>(cfg.get_int("nodes", s.cluster.nodes));
  s.jobs.count = cfg.get_int("jobs", 40);
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));

  scenario::ExperimentOptions options;
  options.policy = scenario::policy_from_string(cfg.get_string("policy", "utility-driven"));
  options.validate_invariants = true;

  std::cout << "Running '" << s.name << "' on " << s.cluster.nodes << " nodes with "
            << s.jobs.count << " jobs under policy " << scenario::to_string(options.policy)
            << "...\n\n";

  const scenario::ExperimentResult result = scenario::run_experiment(s, options);

  scenario::print_summary(std::cout, result.summary);

  std::cout << "\nUtility over time (Figure-1 style):\n";
  scenario::print_series_csv(std::cout, result.series,
                             {"tx_utility", "lr_hyp_utility", "u_star"}, /*every_nth=*/8);

  std::cout << "\nCPU allocation over time (Figure-2 style, MHz):\n";
  scenario::print_series_csv(
      std::cout, result.series,
      {"tx_alloc_mhz", "tx_demand_mhz", "lr_alloc_mhz", "lr_demand_mhz"}, /*every_nth=*/8);
  return 0;
}
