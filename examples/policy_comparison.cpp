// Side-by-side policy comparison on the same workload: the paper's
// utility-driven controller vs three utility-blind baselines. Prints one
// summary row per policy — the utility-driven controller is the only one
// that keeps the worst-off workload class healthy.
//
// Run:  ./build/examples/policy_comparison [--scale=F]

#include <algorithm>
#include <iostream>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  util::Config cfg;
  try {
    cfg = util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  const double scale = cfg.get_double("scale", 0.2);
  scenario::Scenario s = scenario::section3_scaled(scale);
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  const std::vector<scenario::PolicyKind> policies = {
      scenario::PolicyKind::kUtilityDriven, scenario::PolicyKind::kStaticPartition,
      scenario::PolicyKind::kProportionalEqual, scenario::PolicyKind::kProportionalDemand};

  std::cout << "Policy comparison on " << s.name << " (" << s.cluster.nodes << " nodes, "
            << s.jobs.count << " jobs)\n\n";

  for (const auto policy : policies) {
    scenario::ExperimentOptions options;
    options.policy = policy;
    options.max_sim_time_s = 2.0e6;
    const auto result = scenario::run_experiment(s, options);
    scenario::print_summary(std::cout, result.summary);
    const double min_class =
        std::min(result.summary.tx_utility.mean(), result.summary.job_utility.mean());
    std::cout << "  min-class utility:   " << min_class << "\n\n";
  }
  std::cout << "The min-class utility row is the paper's point: only utility-driven\n"
               "placement keeps both heterogeneous classes satisfied simultaneously.\n";
  return 0;
}
